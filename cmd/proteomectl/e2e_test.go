package main

import (
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/events"
	"repro/internal/flow"
)

// binPath is the proteomectl binary TestMain builds once for the
// subprocess end-to-end tests; buildErr records a failed build without
// blocking the in-process unit tests.
var (
	binPath  string
	buildErr error
)

func TestMain(m *testing.M) {
	os.Exit(testMain(m))
}

func testMain(m *testing.M) int {
	flag.Parse()
	if testing.Short() {
		// Every binPath consumer skips under -short; don't pay the build.
		return m.Run()
	}
	dir, err := os.MkdirTemp("", "proteomectl-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: tempdir:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "proteomectl")
	// Build the subprocess binary with the race detector whenever the
	// harness has it, so the scheduler/worker/submit processes — where all
	// the interesting concurrency runs — are race-checked too.
	buildArgs := []string{"build"}
	if raceEnabled {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", binPath, ".")
	cmd := osexec.Command("go", buildArgs...)
	if out, err := cmd.CombinedOutput(); err != nil {
		buildErr = fmt.Errorf("building proteomectl: %v\n%s", err, out)
	}
	return m.Run()
}

// e2eCluster spawns a real scheduler process and n worker processes
// connected through a scheduler file, returning the file path. All
// processes are killed at test cleanup.
func e2eCluster(t *testing.T, n int) string {
	return e2eClusterArgs(t, n)
}

// e2eClusterArgs is e2eCluster with extra scheduler flags (e.g.
// -event-log for the observability tests).
func e2eClusterArgs(t *testing.T, n int, schedArgs ...string) string {
	t.Helper()
	wires := make([]string, n)
	return e2eClusterWires(t, wires, schedArgs...)
}

// e2eClusterWires is the mixed-fleet variant: one worker per entry of
// wires, each dialing with that -wire codec ("" leaves the flag at its
// JSON default).
func e2eClusterWires(t *testing.T, wires []string, schedArgs ...string) string {
	t.Helper()
	return e2eClusterFull(t, wires, nil, schedArgs...)
}

// e2eClusterFull additionally passes extra flags to every worker — e.g.
// a fast -heartbeat so a small scheduler -heartbeat-timeout doesn't
// false-reap healthy workers in the fault-injection tests.
func e2eClusterFull(t *testing.T, wires []string, workerArgs []string, schedArgs ...string) string {
	t.Helper()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	schedFile := filepath.Join(dir, "sched.json")

	spawn := func(name string, args ...string) {
		t.Helper()
		cmd := osexec.Command(binPath, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}

	spawn("scheduler", append([]string{"sched", "-listen", "127.0.0.1:0", "-scheduler-file", schedFile}, schedArgs...)...)

	// The scheduler file appears once the scheduler is listening.
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(schedFile)
		if err == nil {
			if _, err := flow.ParseSchedulerFile(data); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler file %s not written in time", schedFile)
		}
		time.Sleep(20 * time.Millisecond)
	}

	for i, wire := range wires {
		args := []string{"worker", "-scheduler-file", schedFile, "-id", fmt.Sprintf("e2e-w%d", i)}
		if wire != "" {
			args = append(args, "-wire", wire)
		}
		args = append(args, workerArgs...)
		spawn("worker", args...)
	}
	return schedFile
}

// run invokes the built proteomectl binary and returns its stdout.
func runBin(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := osexec.Command(binPath, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("proteomectl %v: %v", args, err)
	}
	return out
}

// TestCampaignMultiProcess is the deployment acceptance test: a campaign
// run across separate scheduler and worker OS processes — every stage
// shipped to the workers as named-job specs, nothing computed in the
// client but the dataflow simulation — must produce a report
// byte-identical to the in-process pool executor and to the loopback flow
// executor.
func TestCampaignMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 3)

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "220", "-seed", "20220125"}

	remote := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	loopback := runBin(t, append([]string{"run", "-executor", "flow"}, campaign...)...)

	if len(remote) == 0 {
		t.Fatal("multi-process campaign produced no report")
	}
	if string(remote) != string(pool) {
		t.Errorf("multi-process report differs from pool executor:\n--- multi-process ---\n%s--- pool ---\n%s", remote, pool)
	}
	if string(remote) != string(loopback) {
		t.Errorf("multi-process report differs from loopback flow executor:\n--- multi-process ---\n%s--- loopback ---\n%s", remote, loopback)
	}
}

// TestCampaignCrossCodec is the wire-interop acceptance test: a mixed
// fleet — binary workers and a JSON worker on one batching scheduler —
// must produce campaign reports byte-identical to the in-process pool
// executor whether the submitting client speaks JSON or binary, with a
// JSON monitor attached throughout. The codec is pure transport; nothing
// about it may leak into a reported number.
func TestCampaignCrossCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eClusterWires(t, []string{"binary", "binary", "json"}, "-batch", "4")

	// A JSON monitor rides along for the whole test: a read-only peer on
	// the legacy wire must coexist with binary dispatch traffic.
	mon := osexec.Command(binPath, "monitor", "-scheduler-file", schedFile, "-json")
	var monOut bytes.Buffer
	mon.Stdout = &monOut
	mon.Stderr = os.Stderr
	if err := mon.Start(); err != nil {
		t.Fatalf("starting monitor: %v", err)
	}
	t.Cleanup(func() {
		_ = mon.Process.Kill()
		_ = mon.Wait()
	})

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "180", "-seed", "20220125"}

	viaJSON := runBin(t, append([]string{"submit", "-scheduler-file", schedFile, "-wire", "json"}, campaign...)...)
	viaBinary := runBin(t, append([]string{"submit", "-scheduler-file", schedFile, "-wire", "binary"}, campaign...)...)
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)

	if len(viaJSON) == 0 {
		t.Fatal("mixed-fleet campaign produced no report")
	}
	if string(viaJSON) != string(pool) {
		t.Errorf("JSON submit over the mixed fleet differs from pool executor:\n--- submit ---\n%s--- pool ---\n%s", viaJSON, pool)
	}
	if string(viaBinary) != string(pool) {
		t.Errorf("binary submit over the mixed fleet differs from pool executor:\n--- submit ---\n%s--- pool ---\n%s", viaBinary, pool)
	}

	// The monitor saw real traffic, decoded cleanly, and its JSONL output
	// replays as a valid event stream covering both campaigns' tasks.
	// (A short drain, then the kill may tear the final line mid-write —
	// ReadLog's intact prefix is what the assertion runs against.)
	time.Sleep(300 * time.Millisecond)
	_ = mon.Process.Kill()
	// Cmd.Wait (not Process.Wait): it joins the goroutine copying the
	// monitor's stdout into monOut before we read the buffer.
	_ = mon.Wait()
	seen, err := events.ReadLog(bytes.NewReader(monOut.Bytes()))
	if err != nil && len(seen) == 0 {
		t.Fatalf("monitor JSONL does not replay as an event stream: %v", err)
	}
	doneTasks := 0
	for _, e := range seen {
		if e.Type == events.TaskDone {
			doneTasks++
		}
	}
	if doneTasks == 0 {
		t.Error("JSON monitor observed no completed tasks on the mixed fleet")
	}
}

// readStatsCSV parses a processing-times CSV written by -stats and
// returns the header and rows.
func readStatsCSV(t *testing.T, path string) ([]string, [][]string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening stats CSV: %v", err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("parsing stats CSV: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("stats CSV is empty")
	}
	return recs[0], recs[1:]
}

// statsColumn returns the index of a column in the stats header.
func statsColumn(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("stats CSV has no %q column (header %v)", name, header)
	return -1
}

// TestSubmitElasticWorkerJoin is the elastic scale-up half of the
// deployment contract: a worker that joins mid-campaign picks up queued
// tasks (visible in the processing-times CSV) and the report stays
// byte-identical to the pool executor — placement can never leak into a
// reported number.
func TestSubmitElasticWorkerJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	// Start with a single worker so the queue stays deep while the late
	// worker registers.
	schedFile := e2eCluster(t, 1)
	statsFile := filepath.Join(filepath.Dir(schedFile), "tasks.csv")

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "300", "-seed", "20220125"}

	submit := osexec.Command(binPath,
		append([]string{"submit", "-scheduler-file", schedFile, "-stats", statsFile}, campaign...)...)
	submit.Stderr = os.Stderr
	var submitOut bytes.Buffer
	submit.Stdout = &submitOut
	if err := submit.Start(); err != nil {
		t.Fatalf("starting submit: %v", err)
	}

	// Elastic scale-up: a second worker joins shortly after the campaign
	// starts (the binary takes longer than this to build its world, so
	// the join lands while the first batch is still queued).
	time.Sleep(100 * time.Millisecond)
	late := osexec.Command(binPath, "worker", "-scheduler-file", schedFile, "-id", "e2e-late")
	late.Stdout = os.Stderr
	late.Stderr = os.Stderr
	if err := late.Start(); err != nil {
		t.Fatalf("starting late worker: %v", err)
	}
	t.Cleanup(func() {
		_ = late.Process.Kill()
		_, _ = late.Process.Wait()
	})

	if err := submit.Wait(); err != nil {
		t.Fatalf("submit: %v", err)
	}
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	if submitOut.String() != string(pool) {
		t.Errorf("report with elastic worker join differs from pool executor:\n--- elastic ---\n%s--- pool ---\n%s",
			submitOut.String(), pool)
	}

	header, rows := readStatsCSV(t, statsFile)
	// One row per task across all three stages: 300 feature tasks plus
	// 300×5 (target, model) inference slots, plus one relax task per
	// completed target (and any high-memory retries).
	if len(rows) < 300+300*5 {
		t.Errorf("stats CSV has %d rows, want at least %d (one per task)", len(rows), 300+300*5)
	}
	wcol := statsColumn(t, header, "worker_id")
	perWorker := map[string]int{}
	for _, row := range rows {
		perWorker[row[wcol]]++
	}
	if perWorker["e2e-late"] == 0 {
		t.Errorf("late-joining worker absent from the stats CSV; placements: %v", perWorker)
	}
	if perWorker["e2e-w0"] == 0 {
		t.Errorf("original worker absent from the stats CSV; placements: %v", perWorker)
	}
}

// TestCampaignMultiSpecies runs two different species through one shared
// multi-process cluster back to back — the workers rebuild each campaign
// world on demand — and requires every report to stay byte-identical to
// the pool executor.
func TestCampaignMultiSpecies(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 3)

	for _, species := range []string{"PMER", "RRU"} {
		campaign := []string{"-species", species, "-preset", "reduced_dbs", "-limit", "120", "-seed", "20220125"}
		remote := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
		pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
		if string(remote) != string(pool) {
			t.Errorf("%s: multi-process report differs from pool executor:\n--- multi-process ---\n%s--- pool ---\n%s",
				species, remote, pool)
		}
	}
}

// TestSubmitSummaryMode is the wire-cost acceptance test across real
// processes: -summary must produce the byte-identical printed report
// while the stats CSV records strictly fewer wire bytes.
func TestSubmitSummaryMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 2)
	dir := filepath.Dir(schedFile)

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "150", "-seed", "20220125"}

	fullCSV := filepath.Join(dir, "full.csv")
	sumCSV := filepath.Join(dir, "summary.csv")
	full := runBin(t, append([]string{"submit", "-scheduler-file", schedFile, "-stats", fullCSV}, campaign...)...)
	sum := runBin(t, append([]string{"submit", "-scheduler-file", schedFile, "-stats", sumCSV, "-summary"}, campaign...)...)

	if string(sum) != string(full) {
		t.Errorf("summary-mode report differs from full mode:\n--- summary ---\n%s--- full ---\n%s", sum, full)
	}

	wireBytes := func(path string) int {
		header, rows := readStatsCSV(t, path)
		col := statsColumn(t, header, "payload_bytes")
		total := 0
		for _, row := range rows {
			n, err := strconv.Atoi(row[col])
			if err != nil {
				t.Fatalf("bad payload_bytes %q: %v", row[col], err)
			}
			total += n
		}
		return total
	}
	fullBytes, sumBytes := wireBytes(fullCSV), wireBytes(sumCSV)
	if sumBytes >= fullBytes {
		t.Errorf("summary mode wire bytes = %d, want strictly fewer than full mode's %d", sumBytes, fullBytes)
	}
	t.Logf("wire bytes: full %d, summary %d (%.1f%% saved)",
		fullBytes, sumBytes, 100*(1-float64(sumBytes)/float64(fullBytes)))
}

// TestMonitorMidCampaign is the observability acceptance test across
// real processes: a campaign on a scheduler with `-event-log` must be
// fully reconstructable offline (the log's task set matches the -stats
// CSV exactly, replays to busy intervals and queue depth, and renders
// the measured-vs-simulated timeline figure), a `monitor -json` client
// attaching mid-campaign must observe the same event sequence as the
// persisted log (backlog + live), and monitoring must not perturb the
// run — the report stays byte-identical to a monitor-free submit and to
// the pool executor.
func TestMonitorMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	eventLog := filepath.Join(dir, "events.jsonl")
	schedFile := e2eClusterArgs(t, 2, "-event-log", eventLog)
	statsFile := filepath.Join(dir, "tasks.csv")
	monitorFile := filepath.Join(dir, "monitor.jsonl")

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "150", "-seed", "20220125"}

	// Baseline: a monitor-free submit on the same cluster. Its events
	// land in the shared log too — and the campaigns are identical, so
	// task labels repeat. Snapshot the baseline's last sequence number
	// so every scheduler-record assertion below is made against the
	// monitored run's own events, not satisfied by baseline leftovers.
	plain := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	baseData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	baseEvents, err := events.ReadLog(bytes.NewReader(baseData))
	if err != nil {
		t.Fatalf("decoding baseline event log: %v", err)
	}
	if len(baseEvents) == 0 {
		t.Fatal("baseline campaign left no events in the log")
	}
	baseSeq := baseEvents[len(baseEvents)-1].Seq

	// Monitored run: the submit starts first, the monitor attaches while
	// the campaign is in flight (the binary takes longer than this to
	// build its world, so the attach lands mid-campaign).
	submit := osexec.Command(binPath,
		append([]string{"submit", "-scheduler-file", schedFile, "-stats", statsFile}, campaign...)...)
	submit.Stderr = os.Stderr
	var submitOut bytes.Buffer
	submit.Stdout = &submitOut
	if err := submit.Start(); err != nil {
		t.Fatalf("starting submit: %v", err)
	}
	time.Sleep(100 * time.Millisecond)

	monOut, err := os.Create(monitorFile)
	if err != nil {
		t.Fatal(err)
	}
	defer monOut.Close()
	mon := osexec.Command(binPath, "monitor", "-scheduler-file", schedFile, "-json")
	mon.Stdout = monOut
	mon.Stderr = os.Stderr
	if err := mon.Start(); err != nil {
		t.Fatalf("starting monitor: %v", err)
	}
	t.Cleanup(func() {
		_ = mon.Process.Kill()
		_, _ = mon.Process.Wait()
	})

	if err := submit.Wait(); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Attaching a monitor never perturbs the campaign: byte-identical to
	// the monitor-free submit and to the pool executor.
	if submitOut.String() != string(plain) {
		t.Errorf("monitored report differs from monitor-free submit:\n--- monitored ---\n%s--- plain ---\n%s",
			submitOut.String(), plain)
	}
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	if submitOut.String() != string(pool) {
		t.Errorf("monitored report differs from pool executor:\n--- monitored ---\n%s--- pool ---\n%s",
			submitOut.String(), pool)
	}

	// The event log's completed-task set for the monitored run (events
	// past the baseline's last sequence number) must exactly match the
	// stats CSV's task set — the scheduler-side record and the
	// client-side trace agree on what ran.
	header, rows := readStatsCSV(t, statsFile)
	idCol := statsColumn(t, header, "task_id")
	csvTasks := map[string]bool{}
	for _, row := range rows {
		csvTasks[row[idCol]] = true
	}
	logData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := events.ReadLog(bytes.NewReader(logData))
	if err != nil {
		t.Fatalf("decoding event log: %v", err)
	}
	logTasks := map[string]bool{}
	for _, e := range logged {
		if e.Seq > baseSeq && (e.Type == events.TaskDone || e.Type == events.TaskFailed) {
			logTasks[e.Task] = true
		}
	}
	for id := range csvTasks {
		if !logTasks[id] {
			t.Errorf("task %s in the stats CSV but never completed in the event log", id)
		}
	}
	for id := range logTasks {
		if !csvTasks[id] {
			t.Errorf("task %s completed in the event log but absent from the stats CSV", id)
		}
	}

	// Offline reconstruction: the log alone replays to per-worker busy
	// intervals and queue depth, and renders the measured-vs-simulated
	// timeline figure. The monitored run's delta alone must account for
	// one busy interval per CSV row — the full-log replay would also be
	// satisfied by baseline events.
	var delta []events.Event
	for _, e := range logged {
		if e.Seq > baseSeq {
			delta = append(delta, e)
		}
	}
	deltaRep, err := events.ReplayEvents(delta)
	if err != nil {
		t.Fatalf("replaying monitored-run events: %v", err)
	}
	if len(deltaRep.Intervals) < len(rows) {
		t.Errorf("monitored run replayed to %d busy intervals, want >= %d (one per CSV row)", len(deltaRep.Intervals), len(rows))
	}
	if deltaRep.MaxDepth() == 0 {
		t.Error("monitored run observed no queue depth on a 2-worker campaign")
	}
	rep, err := events.ReplayEvents(logged)
	if err != nil {
		t.Fatalf("replaying event log: %v", err)
	}
	if len(rep.Workers) != 2 {
		t.Errorf("replay workers = %v, want the 2 e2e workers", rep.Workers)
	}
	fig, err := analysis.ReplayTimeline(rep, "e2e campaign")
	if err != nil {
		t.Fatalf("building replay timeline: %v", err)
	}
	var svg bytes.Buffer
	if err := fig.Render(&svg); err != nil {
		t.Fatalf("rendering replay timeline: %v", err)
	}
	if !strings.Contains(svg.String(), "</svg>") || len(fig.Simulated) == 0 {
		t.Error("replay timeline did not render a complete overlay figure")
	}

	// The monitor observed the same event sequence as the persisted log:
	// its raw JSONL output is a prefix of the log (backlog + live), and
	// it caught every completion. Poll until the monitor's writer has
	// drained, then stop it.
	deadline := time.Now().Add(30 * time.Second)
	var monLines []string
	for {
		data, err := os.ReadFile(monitorFile)
		if err == nil {
			monLines = strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			monTasks := map[string]bool{}
			if evs, err := events.ReadLog(bytes.NewReader(data)); err == nil {
				for _, e := range evs {
					// Only the monitored run's completions count: the
					// backlog replays the baseline's identical labels.
					if e.Seq > baseSeq && (e.Type == events.TaskDone || e.Type == events.TaskFailed) {
						monTasks[e.Task] = true
					}
				}
				complete := true
				for id := range csvTasks {
					if !monTasks[id] {
						complete = false
						break
					}
				}
				if complete {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor did not observe every completion in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	_ = mon.Process.Kill()
	_, _ = mon.Process.Wait()

	logLines := strings.Split(strings.TrimRight(string(logData), "\n"), "\n")
	if len(monLines) > len(logLines) {
		t.Fatalf("monitor printed %d events, log has %d", len(monLines), len(logLines))
	}
	for i, line := range monLines {
		if line != logLines[i] {
			t.Fatalf("monitor event %d differs from the persisted log:\nmonitor: %s\nlog:     %s", i, line, logLines[i])
		}
	}
}

// TestResumeAfterSchedulerKill is the crash-recovery acceptance test: a
// scheduler killed mid-campaign loses nothing that matters. Its event log
// survives; a restarted scheduler (-resume-log) continues the stream; a
// resumed submit (-resume) skips every task the interrupted run completed
// — recomputing them locally from the deterministic world — and produces
// a report byte-identical to an uninterrupted run while strictly fewer
// tasks cross the wire.
func TestResumeAfterSchedulerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "300", "-seed", "20220125"}

	// Phase A — references from an undisturbed world: the pool executor's
	// report, and a full uninterrupted submit's stats CSV on its own
	// cluster (the killed submit never writes one).
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	refSched := e2eCluster(t, 2)
	fullCSV := filepath.Join(filepath.Dir(refSched), "full.csv")
	full := runBin(t, append([]string{"submit", "-scheduler-file", refSched, "-stats", fullCSV}, campaign...)...)
	if string(full) != string(pool) {
		t.Fatalf("uninterrupted submit differs from pool executor:\n--- submit ---\n%s--- pool ---\n%s", full, pool)
	}

	// Phase B — the doomed cluster: scheduler with an event log, two
	// workers, a submit in flight. All hand-rolled so the scheduler can be
	// killed at a moment of our choosing.
	dir := t.TempDir()
	schedFile := filepath.Join(dir, "sched.json")
	eventLog := filepath.Join(dir, "events.jsonl")
	resumeLog := filepath.Join(dir, "resume.jsonl")
	resumedCSV := filepath.Join(dir, "resumed.csv")

	spawn := func(name string, args ...string) *osexec.Cmd {
		t.Helper()
		cmd := osexec.Command(binPath, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd
	}
	waitSchedFile := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if data, err := os.ReadFile(schedFile); err == nil {
				if _, err := flow.ParseSchedulerFile(data); err == nil {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("scheduler file %s not written in time", schedFile)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	sched := spawn("scheduler", "sched", "-listen", "127.0.0.1:0",
		"-scheduler-file", schedFile, "-event-log", eventLog)
	waitSchedFile()
	spawn("worker", "worker", "-scheduler-file", schedFile, "-id", "e2e-b0")
	spawn("worker", "worker", "-scheduler-file", schedFile, "-id", "e2e-b1")

	submit := osexec.Command(binPath,
		append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	submit.Stdout = os.Stderr
	submit.Stderr = os.Stderr
	if err := submit.Start(); err != nil {
		t.Fatalf("starting submit: %v", err)
	}
	submitDone := make(chan error, 1)
	go func() { submitDone <- submit.Wait(); close(submitDone) }()
	t.Cleanup(func() { _ = submit.Process.Kill(); <-submitDone })

	// Kill the scheduler once real progress is on disk but the campaign
	// is far from finished (~20 of the 2100 tasks).
	deadline := time.Now().Add(60 * time.Second)
	for {
		data, _ := os.ReadFile(eventLog)
		if bytes.Count(data, []byte(`"type":"done"`)) >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress before the kill window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = sched.Process.Kill()
	_, _ = sched.Process.Wait()
	// The orphaned submit exits on its own (lost connection); either exit
	// status is acceptable — the resume contract is what matters.
	select {
	case <-submitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("killed-scheduler submit did not exit")
	}

	// Snapshot the log before the restarted scheduler rewrites it in
	// place: this frozen copy is what the resumed submit replays.
	logData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(resumeLog, logData, 0o644); err != nil {
		t.Fatal(err)
	}
	completed, err := events.CompletedFromLog(bytes.NewReader(logData))
	if err != nil {
		t.Fatalf("reading the crashed scheduler's log: %v", err)
	}
	if completed.Len() == 0 {
		t.Fatal("crashed run completed no tasks; the kill landed too early")
	}

	// Phase C — recovery: a fresh scheduler resumes the event stream from
	// its own log, fresh workers join, and the submit resumes from the
	// snapshot.
	if err := os.Remove(schedFile); err != nil {
		t.Fatal(err)
	}
	spawn("restarted scheduler", "sched", "-listen", "127.0.0.1:0",
		"-scheduler-file", schedFile, "-event-log", eventLog, "-resume-log")
	waitSchedFile()
	spawn("worker", "worker", "-scheduler-file", schedFile, "-id", "e2e-c0")
	spawn("worker", "worker", "-scheduler-file", schedFile, "-id", "e2e-c1")

	resumed := runBin(t, append([]string{"submit", "-scheduler-file", schedFile,
		"-resume", resumeLog, "-stats", resumedCSV}, campaign...)...)

	// The resumed report is byte-identical to the uninterrupted run.
	if string(resumed) != string(pool) {
		t.Errorf("resumed report differs from pool executor:\n--- resumed ---\n%s--- pool ---\n%s", resumed, pool)
	}

	// Strictly fewer tasks crossed the wire, and none of them was a task
	// the crashed run already completed.
	fullHeader, fullRows := readStatsCSV(t, fullCSV)
	resHeader, resRows := readStatsCSV(t, resumedCSV)
	if len(resRows) >= len(fullRows) {
		t.Errorf("resumed run dispatched %d tasks, want strictly fewer than the full run's %d", len(resRows), len(fullRows))
	}
	if len(resRows) == 0 {
		t.Error("resumed run dispatched nothing; the crashed run had already finished")
	}
	_ = fullHeader
	idCol := statsColumn(t, resHeader, "task_id")
	for _, row := range resRows {
		if completed.Done(row[idCol]) {
			t.Errorf("task %s was completed before the crash but re-dispatched on resume", row[idCol])
		}
	}
	t.Logf("resume: %d tasks completed pre-crash, %d of %d re-dispatched",
		completed.Len(), len(resRows), len(fullRows))

	// The restarted scheduler's log is one continuous, replayable stream:
	// the crashed run's intact prefix plus everything the resumed
	// campaign appended, with strictly increasing sequence numbers.
	finalData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	finalEvents, err := events.ReadLog(bytes.NewReader(finalData))
	if err != nil {
		t.Fatalf("decoding the restarted scheduler's log: %v", err)
	}
	if len(finalEvents) <= completed.Len() {
		t.Errorf("final log has %d events; expected the crashed prefix plus the resumed campaign", len(finalEvents))
	}
	if _, err := events.ReplayEvents(finalEvents); err != nil {
		t.Fatalf("replaying the stitched log across the restart: %v", err)
	}
}

// TestSubmitSurvivesWorkerChurn kills one worker mid-campaign: the
// scheduler requeues its in-flight task and the remaining workers finish
// the batch with the identical report — the fault-tolerance half of the
// deployment contract.
func TestSubmitSurvivesWorkerChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 2)

	// An extra worker that dies shortly after the campaign starts.
	churn := osexec.Command(binPath, "worker", "-scheduler-file", schedFile, "-id", "e2e-churn")
	churn.Stdout = os.Stderr
	churn.Stderr = os.Stderr
	if err := churn.Start(); err != nil {
		t.Fatalf("starting churn worker: %v", err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = churn.Process.Kill()
	}()
	t.Cleanup(func() {
		_ = churn.Process.Kill()
		_, _ = churn.Process.Wait()
	})

	campaign := []string{"-species", "DVU", "-preset", "reduced_dbs", "-limit", "150", "-seed", "7"}
	remote := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	if string(remote) != string(pool) {
		t.Errorf("report after worker churn differs from pool executor:\n--- multi-process ---\n%s--- pool ---\n%s", remote, pool)
	}
}

// TestSlowPeerFaultInjection is the non-blocking-I/O acceptance test
// across real processes: while a campaign is in flight, a raw "worker"
// registers and then never reads its socket, and a raw monitor
// subscribes and never drains its event stream. The scheduler must
// declare the wedged worker dead (heartbeat silence and/or a blocked
// write), requeue anything handed to it, keep the event stream flowing
// past the wedged monitor, and finish the campaign with a report
// byte-identical to the in-process pool executor. Before per-connection
// outbound queues, a single such peer could park the dispatch loop on a
// blocking send and stall the whole fleet.
func TestSlowPeerFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	eventLog := filepath.Join(dir, "events.jsonl")
	// Healthy workers beat at a quarter of the reap deadline so only the
	// silent wedge trips it; -write-timeout caps how long the scheduler
	// tolerates the monitor's never-drained socket.
	schedFile := e2eClusterFull(t, make([]string, 2), []string{"-heartbeat", "500ms"},
		"-event-log", eventLog, "-heartbeat-timeout", "2s", "-write-timeout", "2s")
	sfData, err := os.ReadFile(schedFile)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := flow.ParseSchedulerFile(sfData)
	if err != nil {
		t.Fatal(err)
	}

	campaign := []string{"-species", "DVU", "-preset", "reduced_dbs", "-limit", "150", "-seed", "7"}

	submit := osexec.Command(binPath,
		append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	var submitOut bytes.Buffer
	submit.Stdout = &submitOut
	submit.Stderr = os.Stderr
	if err := submit.Start(); err != nil {
		t.Fatalf("starting submit: %v", err)
	}
	t.Cleanup(func() {
		_ = submit.Process.Kill()
		_, _ = submit.Process.Wait()
	})

	// Attach the wedges while the submit is still building its world, so
	// they are live peers when dispatch starts: one JSON hello frame
	// each, then radio silence with a shrunken receive buffer (anything
	// the scheduler writes blocks quickly instead of vanishing into
	// kernel buffering).
	time.Sleep(100 * time.Millisecond)
	wedge := func(hello string) {
		t.Helper()
		conn, err := net.Dial("tcp", sf.Address)
		if err != nil {
			t.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(4 << 10)
		}
		t.Cleanup(func() { conn.Close() })
		if _, err := conn.Write([]byte(hello + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	wedge(`{"type":"register","worker_id":"e2e-wedged","slots":1,"max_batch":4096}`)
	wedge(`{"type":"subscribe"}`)

	if err := submit.Wait(); err != nil {
		t.Fatalf("submit with wedged peers attached: %v", err)
	}
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	if submitOut.String() != string(pool) {
		t.Errorf("report with wedged peers differs from pool executor:\n--- wedged ---\n%s--- pool ---\n%s",
			submitOut.String(), pool)
	}

	// The scheduler recorded the wedge's death — it joined, was declared
	// lost or gone, and the healthy workers did every completion.
	logData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := events.ReadLog(bytes.NewReader(logData))
	if err != nil {
		t.Fatalf("decoding event log: %v", err)
	}
	joined, reaped := false, false
	for _, e := range logged {
		if e.Worker == "e2e-wedged" {
			switch e.Type {
			case events.WorkerJoin:
				joined = true
			case events.WorkerLost, events.WorkerLeave:
				reaped = true
			case events.TaskDone:
				t.Errorf("task %s reported done by the wedged worker", e.Task)
			}
		}
	}
	if !joined {
		t.Error("wedged worker never joined; the fault was not injected")
	}
	if !reaped {
		t.Error("wedged worker was never declared dead")
	}
}

// TestTwoCampaignsFairShare is the multi-tenancy acceptance test: two
// campaigns submitted concurrently to one fair-share scheduler (`sched
// -policy fair`, `submit -campaign`) must each print a report
// byte-identical to its solo run on the same cluster, the event log must
// attribute every task transition to its campaign, and the two campaigns'
// completion windows must overlap — the second tenant starts finishing
// tasks while the first still has backlog, so neither starves.
func TestTwoCampaignsFairShare(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	eventLog := filepath.Join(dir, "events.jsonl")
	schedFile := e2eClusterArgs(t, 2, "-policy", "fair", "-event-log", eventLog)
	statsFile := filepath.Join(dir, "dvu.csv")

	dvu := []string{"-species", "DVU", "-preset", "genome", "-limit", "150", "-seed", "20220125", "-campaign", "dvu-full"}
	rru := []string{"-species", "RRU", "-preset", "genome", "-limit", "150", "-seed", "20220125", "-campaign", "rru-pilot"}

	// Solo references: each campaign alone on the same cluster. Sharing
	// the fleet may change timings, but never a reported number.
	soloDVU := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, dvu...)...)
	soloRRU := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, rru...)...)

	baseData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	baseEvents, err := events.ReadLog(bytes.NewReader(baseData))
	if err != nil {
		t.Fatalf("decoding baseline event log: %v", err)
	}
	if len(baseEvents) == 0 {
		t.Fatal("solo runs left no events in the log")
	}
	baseSeq := baseEvents[len(baseEvents)-1].Seq

	// The contested run: both campaigns in flight on the shared fleet at
	// once.
	launch := func(args []string) (*osexec.Cmd, *bytes.Buffer) {
		t.Helper()
		cmd := osexec.Command(binPath, args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %v: %v", args, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		return cmd, &out
	}
	subDVU, outDVU := launch(append([]string{"submit", "-scheduler-file", schedFile, "-stats", statsFile}, dvu...))
	subRRU, outRRU := launch(append([]string{"submit", "-scheduler-file", schedFile}, rru...))
	if err := subDVU.Wait(); err != nil {
		t.Fatalf("DVU submit: %v", err)
	}
	if err := subRRU.Wait(); err != nil {
		t.Fatalf("RRU submit: %v", err)
	}

	// Contention is invisible in the reports: byte-identical to the solo
	// runs.
	if outDVU.String() != string(soloDVU) {
		t.Errorf("contested DVU report differs from its solo run:\n--- contested ---\n%s--- solo ---\n%s",
			outDVU.String(), soloDVU)
	}
	if outRRU.String() != string(soloRRU) {
		t.Errorf("contested RRU report differs from its solo run:\n--- contested ---\n%s--- solo ---\n%s",
			outRRU.String(), soloRRU)
	}

	// The event log attributes the contested run's transitions per
	// campaign, and the two completion windows overlap: each campaign
	// finishes its first task before the other finishes its last — the
	// no-starvation evidence a FIFO queue cannot produce when one backlog
	// monopolizes the fleet.
	logData, err := os.ReadFile(eventLog)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := events.ReadLog(bytes.NewReader(logData))
	if err != nil {
		t.Fatalf("decoding event log: %v", err)
	}
	type window struct {
		firstDone, lastDone uint64
		done                int
	}
	windows := map[string]*window{}
	for _, e := range logged {
		if e.Seq <= baseSeq || e.Type != events.TaskDone {
			continue
		}
		w := windows[e.Campaign]
		if w == nil {
			w = &window{firstDone: e.Seq}
			windows[e.Campaign] = w
		}
		w.lastDone = e.Seq
		w.done++
	}
	dvuWin, rruWin := windows["dvu-full"], windows["rru-pilot"]
	if dvuWin == nil || rruWin == nil {
		t.Fatalf("event log lacks campaign attribution: windows = %v", windows)
	}
	if unattributed := windows[""]; unattributed != nil {
		t.Errorf("%d contested-run completions carry no campaign", unattributed.done)
	}
	if dvuWin.done != rruWin.done {
		t.Logf("completions: dvu-full %d, rru-pilot %d", dvuWin.done, rruWin.done)
	}
	if dvuWin.firstDone > rruWin.lastDone || rruWin.firstDone > dvuWin.lastDone {
		t.Errorf("campaign completion windows do not overlap (dvu [%d,%d], rru [%d,%d]): one tenant starved",
			dvuWin.firstDone, dvuWin.lastDone, rruWin.firstDone, rruWin.lastDone)
	}

	// The client-side trace carries the campaign too: every stats CSV row
	// of the DVU submit is stamped dvu-full.
	header, rows := readStatsCSV(t, statsFile)
	campCol := statsColumn(t, header, "campaign")
	for _, row := range rows {
		if row[campCol] != "dvu-full" {
			t.Fatalf("stats row %v: campaign = %q, want dvu-full", row, row[campCol])
		}
	}
}

// parseScrape indexes a Prometheus text scrape by full series name —
// `name{labels}` → value — skipping comment lines.
func parseScrape(body string) map[string]float64 {
	series := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		series[line[:i]] = v
	}
	return series
}

// TestMetricsEndpointMatchesEventLog is the observability acceptance test:
// a real multi-worker campaign on a scheduler running with both -http and
// -event-log, scraped over HTTP mid-run and after completion. The final
// counters must exactly match the persisted event log's tallies — the
// scrape and the log are two views of the same stream — the
// heartbeat-carried worker gauges must account for every executed task,
// and `top -metrics-snapshot` must derive the same numbers from the
// monitor protocol alone.
func TestMetricsEndpointMatchesEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	eventLog := filepath.Join(dir, "events.jsonl")
	// Fast worker heartbeats so the gauge series converge within the poll
	// window below.
	schedFile := e2eClusterFull(t, make([]string, 2), []string{"-heartbeat", "500ms"},
		"-event-log", eventLog, "-http", "127.0.0.1:0")

	sfData, err := os.ReadFile(schedFile)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := flow.ParseSchedulerFile(sfData)
	if err != nil {
		t.Fatal(err)
	}
	if sf.HTTP == "" {
		t.Fatal("scheduler file does not advertise the -http admin endpoint")
	}
	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get("http://" + sf.HTTP + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "150", "-seed", "20220125", "-campaign", "dvu-metrics"}
	submit := osexec.Command(binPath, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	submit.Stdout = os.Stderr
	submit.Stderr = os.Stderr
	if err := submit.Start(); err != nil {
		t.Fatalf("starting submit: %v", err)
	}
	time.Sleep(150 * time.Millisecond)

	// Mid-run: the endpoint serves well-formed exposition while the
	// campaign is in flight, and the scheduler reports healthy.
	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("mid-run GET /metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("mid-run /metrics Content-Type = %q", ctype)
	}
	for _, want := range []string{"# TYPE flow_tasks_total counter", "flow_queue_depth "} {
		if !strings.Contains(body, want) {
			t.Errorf("mid-run scrape missing %q:\n%s", want, body)
		}
	}
	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("mid-run GET /healthz = %d %q, want 200 ok", code, body)
	}

	if err := submit.Wait(); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// After completion: poll until the scrape and the persisted log agree
	// exactly (the log sink is async and the gauge series lag by one
	// heartbeat; a partially flushed last JSONL line is retried too).
	deadline := time.Now().Add(15 * time.Second)
	var done, failed, joins int
	for {
		done, failed, joins = 0, 0, 0
		converged := false
		data, err := os.ReadFile(eventLog)
		if err != nil {
			t.Fatal(err)
		}
		logged, err := events.ReadLog(bytes.NewReader(data))
		if err == nil {
			for _, e := range logged {
				switch {
				case e.Campaign == "dvu-metrics" && e.Type == events.TaskDone:
					done++
				case e.Campaign == "dvu-metrics" && e.Type == events.TaskFailed:
					failed++
				case e.Type == events.WorkerJoin:
					joins++
				}
			}
			code, body, _ := get("/metrics")
			if code != http.StatusOK {
				t.Fatalf("final GET /metrics = %d", code)
			}
			s := parseScrape(body)
			converged = done > 0 &&
				s[`flow_tasks_total{event="done",campaign="dvu-metrics"}`] == float64(done) &&
				s[`flow_tasks_total{event="failed",campaign="dvu-metrics"}`] == float64(failed) &&
				s[`flow_worker_events_total{event="worker_join"}`] == float64(joins) &&
				s["flow_queue_depth"] == 0 &&
				s["flow_tasks_running"] == 0 &&
				// Heartbeat-carried gauges: the fleet's executed-task total
				// accounts for every completion the log recorded.
				s[`flow_worker_tasks_executed{worker="e2e-w0"}`]+
					s[`flow_worker_tasks_executed{worker="e2e-w1"}`] == float64(done+failed) &&
				s[`flow_worker_goroutines{worker="e2e-w0"}`] > 0 &&
				s[`flow_worker_heap_bytes{worker="e2e-w1"}`] > 0
			if converged {
				break
			}
		}
		if time.Now().After(deadline) {
			_, body, _ := get("/metrics")
			t.Fatalf("metrics never converged with the event log (log: done=%d failed=%d joins=%d, readErr=%v)\nscrape:\n%s",
				done, failed, joins, err, body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The same tallies are derivable without the HTTP endpoint: `top
	// -metrics-snapshot` folds the monitor stream into one scrape.
	snap := string(runBin(t, "top", "-scheduler-file", schedFile, "-metrics-snapshot"))
	for _, want := range []string{
		fmt.Sprintf(`flow_tasks_total{event="done",campaign="dvu-metrics"} %d`, done),
		fmt.Sprintf(`flow_worker_events_total{event="worker_join"} %d`, joins),
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("top -metrics-snapshot missing %q:\n%s", want, snap)
		}
	}
}
