package main

import (
	"flag"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flow"
)

// binPath is the proteomectl binary TestMain builds once for the
// subprocess end-to-end tests; buildErr records a failed build without
// blocking the in-process unit tests.
var (
	binPath  string
	buildErr error
)

func TestMain(m *testing.M) {
	os.Exit(testMain(m))
}

func testMain(m *testing.M) int {
	flag.Parse()
	if testing.Short() {
		// Every binPath consumer skips under -short; don't pay the build.
		return m.Run()
	}
	dir, err := os.MkdirTemp("", "proteomectl-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: tempdir:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "proteomectl")
	// Build the subprocess binary with the race detector whenever the
	// harness has it, so the scheduler/worker/submit processes — where all
	// the interesting concurrency runs — are race-checked too.
	buildArgs := []string{"build"}
	if raceEnabled {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", binPath, ".")
	cmd := osexec.Command("go", buildArgs...)
	if out, err := cmd.CombinedOutput(); err != nil {
		buildErr = fmt.Errorf("building proteomectl: %v\n%s", err, out)
	}
	return m.Run()
}

// e2eCluster spawns a real scheduler process and n worker processes
// connected through a scheduler file, returning the file path. All
// processes are killed at test cleanup.
func e2eCluster(t *testing.T, n int) string {
	t.Helper()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	dir := t.TempDir()
	schedFile := filepath.Join(dir, "sched.json")

	spawn := func(name string, args ...string) {
		t.Helper()
		cmd := osexec.Command(binPath, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}

	spawn("scheduler", "sched", "-listen", "127.0.0.1:0", "-scheduler-file", schedFile)

	// The scheduler file appears once the scheduler is listening.
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(schedFile)
		if err == nil {
			if _, err := flow.ParseSchedulerFile(data); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler file %s not written in time", schedFile)
		}
		time.Sleep(20 * time.Millisecond)
	}

	for i := 0; i < n; i++ {
		spawn("worker", "worker", "-scheduler-file", schedFile, "-id", fmt.Sprintf("e2e-w%d", i))
	}
	return schedFile
}

// run invokes the built proteomectl binary and returns its stdout.
func runBin(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := osexec.Command(binPath, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("proteomectl %v: %v", args, err)
	}
	return out
}

// TestCampaignMultiProcess is the deployment acceptance test: a campaign
// run across separate scheduler and worker OS processes — every stage
// shipped to the workers as named-job specs, nothing computed in the
// client but the dataflow simulation — must produce a report
// byte-identical to the in-process pool executor and to the loopback flow
// executor.
func TestCampaignMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 3)

	campaign := []string{"-species", "DVU", "-preset", "genome", "-limit", "220", "-seed", "20220125"}

	remote := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	loopback := runBin(t, append([]string{"run", "-executor", "flow"}, campaign...)...)

	if len(remote) == 0 {
		t.Fatal("multi-process campaign produced no report")
	}
	if string(remote) != string(pool) {
		t.Errorf("multi-process report differs from pool executor:\n--- multi-process ---\n%s--- pool ---\n%s", remote, pool)
	}
	if string(remote) != string(loopback) {
		t.Errorf("multi-process report differs from loopback flow executor:\n--- multi-process ---\n%s--- loopback ---\n%s", remote, loopback)
	}
}

// TestSubmitSurvivesWorkerChurn kills one worker mid-campaign: the
// scheduler requeues its in-flight task and the remaining workers finish
// the batch with the identical report — the fault-tolerance half of the
// deployment contract.
func TestSubmitSurvivesWorkerChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	schedFile := e2eCluster(t, 2)

	// An extra worker that dies shortly after the campaign starts.
	churn := osexec.Command(binPath, "worker", "-scheduler-file", schedFile, "-id", "e2e-churn")
	churn.Stdout = os.Stderr
	churn.Stderr = os.Stderr
	if err := churn.Start(); err != nil {
		t.Fatalf("starting churn worker: %v", err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = churn.Process.Kill()
	}()
	t.Cleanup(func() {
		_ = churn.Process.Kill()
		_, _ = churn.Process.Wait()
	})

	campaign := []string{"-species", "DVU", "-preset", "reduced_dbs", "-limit", "150", "-seed", "7"}
	remote := runBin(t, append([]string{"submit", "-scheduler-file", schedFile}, campaign...)...)
	pool := runBin(t, append([]string{"run", "-executor", "pool"}, campaign...)...)
	if string(remote) != string(pool) {
		t.Errorf("report after worker churn differs from pool executor:\n--- multi-process ---\n%s--- pool ---\n%s", remote, pool)
	}
}
