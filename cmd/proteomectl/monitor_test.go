package main

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/flow"
)

// scriptedSource feeds a fixed event sequence, then ends like a closed
// monitor (wrapping flow.ErrStreamEnd) or, when failWith is set, fails
// mid-stream like a protocol error.
type scriptedSource struct {
	evs      []events.Event
	i        int
	failWith error
}

func (s *scriptedSource) Next() (events.Event, error) {
	if s.i >= len(s.evs) {
		if s.failWith != nil {
			return events.Event{}, s.failWith
		}
		return events.Event{}, fmt.Errorf("%w: connection closed", flow.ErrStreamEnd)
	}
	e := s.evs[s.i]
	s.i++
	return e, nil
}

func campaignEvents() []events.Event {
	evs := []events.Event{
		{Type: events.WorkerJoin, Worker: "w1"},
		{Type: events.TaskReceived, Task: "DVU_00001"},
		{Type: events.TaskQueued, Task: "DVU_00001"},
		{Type: events.TaskReceived, Task: "DVU_00002"},
		{Type: events.TaskQueued, Task: "DVU_00002"},
		{Type: events.TaskAssigned, Task: "DVU_00001", Worker: "w1"},
		{Type: events.TaskRunning, Task: "DVU_00001", Worker: "w1"},
		{Type: events.TaskDone, Task: "DVU_00001", Worker: "w1"},
		{Type: events.TaskAssigned, Task: "DVU_00002", Worker: "w1"},
		{Type: events.TaskRunning, Task: "DVU_00002", Worker: "w1"},
		{Type: events.TaskFailed, Task: "DVU_00002", Worker: "w1", Err: "boom"},
		{Type: events.WorkerLeave, Worker: "w1"},
	}
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
		evs[i].TimeNS = int64(i) * 250_000_000 // 0.25s apart
	}
	return evs
}

func TestRunMonitorSummaryLines(t *testing.T) {
	var buf bytes.Buffer
	if err := runMonitor(&scriptedSource{evs: campaignEvents()}, &buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// One line per event plus the closing summary.
	if len(lines) != len(campaignEvents())+1 {
		t.Fatalf("monitor printed %d lines, want %d:\n%s", len(lines), len(campaignEvents())+1, out)
	}
	for _, want := range []string{
		"worker_join w1",
		"queued      DVU_00001",
		"queue=2",
		"running     DVU_00001",
		"worker=w1",
		"done        DVU_00001",
		"failed      DVU_00002",
		"err=boom",
		"monitor: 2 received, 1 done, 1 failed, 0 dropped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("monitor output missing %q:\n%s", want, out)
		}
	}
	// Throughput over the 2.75 s span: 1 done / 2.75 s.
	if !strings.Contains(out, "(0.36 tasks/s)") {
		t.Errorf("monitor summary missing throughput:\n%s", out)
	}
}

func TestRunMonitorRawJSONL(t *testing.T) {
	evs := campaignEvents()
	var buf bytes.Buffer
	if err := runMonitor(&scriptedSource{evs: evs}, &buf, true); err != nil {
		t.Fatal(err)
	}
	// Raw mode is byte-compatible with the -event-log format: decoding
	// it yields the exact event sequence.
	got, err := events.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("raw stream decoded to %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, got[i], evs[i])
		}
	}
}

// TestRunMonitorSurfacesStreamErrors: only a clean stream end
// (flow.ErrStreamEnd) exits 0; a mid-stream protocol error propagates,
// so a truncated -json capture never looks like a complete log.
func TestRunMonitorSurfacesStreamErrors(t *testing.T) {
	boom := errors.New("flow: monitor stream: invalid frame")
	for _, raw := range []bool{true, false} {
		var buf bytes.Buffer
		err := runMonitor(&scriptedSource{evs: campaignEvents()[:3], failWith: boom}, &buf, raw)
		if !errors.Is(err, boom) {
			t.Errorf("raw=%v: runMonitor error = %v, want the stream error", raw, err)
		}
	}
}

func TestMonitorCmdFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := monitorCmd([]string{}, &buf); err == nil {
		t.Error("monitor with neither -connect nor -scheduler-file succeeded")
	}
	if err := monitorCmd([]string{"-connect", "x", "-scheduler-file", "y"}, &buf); err == nil {
		t.Error("monitor with both -connect and -scheduler-file succeeded")
	}
	if err := monitorCmd([]string{"-scheduler-file", "/nonexistent/sched.json"}, &buf); err == nil {
		t.Error("monitor with a missing scheduler file succeeded")
	}
	if err := monitorCmd([]string{"-bogus"}, &buf); !errors.Is(err, errFlagParse) {
		t.Errorf("bad flag error = %v, want errFlagParse", err)
	}
}

func TestSchedCmdEventLogFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	// An uncreatable event-log path must fail before the scheduler binds.
	err := schedCmd([]string{"-listen", "127.0.0.1:0", "-event-log", "/nonexistent/dir/events.jsonl"}, &buf)
	if err == nil {
		t.Fatal("sched with uncreatable -event-log succeeded")
	}
	if !strings.Contains(err.Error(), "nonexistent") {
		t.Errorf("error %v does not name the bad path", err)
	}
}
