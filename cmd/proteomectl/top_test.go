package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// topEvents is a small multi-state campaign with deterministic stamps:
// w1 joins at 0, runs task a for 2 s and task b for 1 s (b fails), and
// the stream spans 4 s — so w1's occupancy is 3 s / 4 s = 75%.
func topEvents() []events.Event {
	evs := []events.Event{
		{TimeNS: 0, Type: events.WorkerJoin, Worker: "w1"},
		{TimeNS: 0, Type: events.TaskReceived, Task: "a", Campaign: "dvu"},
		{TimeNS: 0, Type: events.TaskQueued, Task: "a", Campaign: "dvu"},
		{TimeNS: 0, Type: events.TaskReceived, Task: "b", Campaign: "dvu"},
		{TimeNS: 0, Type: events.TaskQueued, Task: "b", Campaign: "dvu"},
		{TimeNS: 1e9, Type: events.TaskAssigned, Task: "a", Worker: "w1", Campaign: "dvu"},
		{TimeNS: 3e9, Type: events.TaskDone, Task: "a", Worker: "w1", Campaign: "dvu"},
		{TimeNS: 3e9, Type: events.TaskAssigned, Task: "b", Worker: "w1", Campaign: "dvu"},
		{TimeNS: 4e9, Type: events.TaskFailed, Task: "b", Worker: "w1", Campaign: "dvu", Err: "boom"},
	}
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	return evs
}

// TestRunTopFinalTable: the stream end triggers one last render whose
// header, campaign row, and worker occupancy all reflect the full stream.
func TestRunTopFinalTable(t *testing.T) {
	var buf bytes.Buffer
	opts := topOptions{interval: time.Hour} // ticker never fires; only the final render
	if err := runTop(&scriptedSource{evs: topEvents()}, &buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		// 1 done over the 4 s span = 0.25 tasks/s.
		"top: queue=0 busy=0 workers=1 done=1 failed=1 dropped=0 0.25 tasks/s",
		"CAMPAIGN",
		"dvu                            0       0       1       1",
		"WORKER",
		// 2 closed intervals, 3 s busy, 75% of the 4 s connected span.
		"w1                    2      3.0s   75.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("clear=false output contains ANSI escapes:\n%s", out)
	}
}

// TestRunTopClearScreen: terminal mode prefixes each render with the ANSI
// clear sequence.
func TestRunTopClearScreen(t *testing.T) {
	var buf bytes.Buffer
	opts := topOptions{interval: time.Hour, clear: true}
	if err := runTop(&scriptedSource{evs: topEvents()}, &buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "\x1b[2J\x1b[H") {
		t.Fatalf("clear=true render does not start with the clear sequence: %q", buf.String())
	}
}

// TestRunTopWorkerLossMarksGone: a lost worker's open interval is cut at
// the loss stamp and its row is flagged, mirroring ReplayOccupancy.
func TestRunTopWorkerLossMarksGone(t *testing.T) {
	evs := []events.Event{
		{Seq: 1, TimeNS: 0, Type: events.WorkerJoin, Worker: "w1"},
		{Seq: 2, TimeNS: 0, Type: events.TaskReceived, Task: "a"},
		{Seq: 3, TimeNS: 0, Type: events.TaskQueued, Task: "a"},
		{Seq: 4, TimeNS: 1e9, Type: events.TaskAssigned, Task: "a", Worker: "w1"},
		{Seq: 5, TimeNS: 2e9, Type: events.WorkerLost, Worker: "w1", Err: "silent"},
		{Seq: 6, TimeNS: 2e9, Type: events.TaskQueued, Task: "a", Attempt: 1},
	}
	var buf bytes.Buffer
	if err := runTop(&scriptedSource{evs: evs}, &buf, topOptions{interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 1 s busy (cut at the loss) over the 2 s connected span = 50%.
	if !strings.Contains(out, "w1                    1      1.0s   50.0 gone") {
		t.Errorf("top output missing the cut-interval row for the lost worker:\n%s", out)
	}
	if !strings.Contains(out, "queue=1 busy=0 workers=0") {
		t.Errorf("top header does not reflect the requeue after the loss:\n%s", out)
	}
}

// TestRunTopSnapshot: -metrics-snapshot folds the stream into the same
// series sched -http serves and prints one Prometheus scrape.
func TestRunTopSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := runTop(&scriptedSource{evs: topEvents()}, &buf, topOptions{snapshot: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE flow_tasks_total counter",
		`flow_tasks_total{event="done",campaign="dvu"} 1`,
		`flow_tasks_total{event="failed",campaign="dvu"} 1`,
		"flow_queue_depth 0",
		"flow_workers_connected 1",
		"flow_task_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "top:") {
		t.Errorf("snapshot mode rendered the live table:\n%s", out)
	}
}

// TestRunTopSurfacesStreamErrors: only flow.ErrStreamEnd exits 0, in both
// modes — same contract as runMonitor.
func TestRunTopSurfacesStreamErrors(t *testing.T) {
	boom := errors.New("flow: monitor stream: invalid frame")
	for _, snapshot := range []bool{false, true} {
		var buf bytes.Buffer
		opts := topOptions{interval: time.Hour, snapshot: snapshot}
		err := runTop(&scriptedSource{evs: topEvents()[:3], failWith: boom}, &buf, opts)
		if !errors.Is(err, boom) {
			t.Errorf("snapshot=%v: runTop error = %v, want the stream error", snapshot, err)
		}
	}
}

func TestTopCmdFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := topCmd([]string{}, &buf); err == nil {
		t.Error("top with neither -connect nor -scheduler-file succeeded")
	}
	if err := topCmd([]string{"-connect", "x", "-scheduler-file", "y"}, &buf); err == nil {
		t.Error("top with both -connect and -scheduler-file succeeded")
	}
	if err := topCmd([]string{"-bogus"}, &buf); !errors.Is(err, errFlagParse) {
		t.Errorf("bad flag error = %v, want errFlagParse", err)
	}
}
