package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStartPprof: the -pprof listener binds synchronously, reports its
// bound address (port 0 resolved), and serves the pprof index.
func TestStartPprof(t *testing.T) {
	addr, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%s", body)
	}
}

// TestStartPprofBadAddr: an unbindable address fails the command at
// startup instead of dying later in a goroutine.
func TestStartPprofBadAddr(t *testing.T) {
	if _, err := startPprof("256.0.0.1:0"); err == nil {
		t.Fatal("startPprof accepted an unbindable address")
	}
}
