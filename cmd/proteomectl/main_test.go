package main

import (
	"bytes"
	"encoding/csv"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/seq"
)

func TestFindSpecies(t *testing.T) {
	tests := []struct {
		code    string
		wantErr bool
		name    string
	}{
		{code: "DVU", name: "Desulfovibrio vulgaris Hildenborough"},
		{code: "PMER", name: "Pseudodesulfovibrio mercurii"},
		{code: "RRU", name: "Rhodospirillum rubrum"},
		{code: "SPDIV", name: "Sphagnum divinum"},
		{code: "dvu", wantErr: true},
		{code: "", wantErr: true},
		{code: "ECOLI", wantErr: true},
	}
	for _, tt := range tests {
		sp, err := findSpecies(tt.code)
		if (err != nil) != tt.wantErr {
			t.Errorf("findSpecies(%q) error = %v, wantErr %v", tt.code, err, tt.wantErr)
			continue
		}
		if err == nil && sp.Name != tt.name {
			t.Errorf("findSpecies(%q) = %q, want %q", tt.code, sp.Name, tt.name)
		}
	}
}

func TestFindPreset(t *testing.T) {
	for _, name := range []string{"reduced_dbs", "genome", "super", "casp14"} {
		p, err := findPreset(name)
		if err != nil {
			t.Errorf("findPreset(%q): %v", name, err)
		} else if p.Name != name {
			t.Errorf("findPreset(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := findPreset("turbo"); err == nil {
		t.Error("findPreset(turbo) succeeded, want error")
	}
}

func TestSpeciesCmd(t *testing.T) {
	var buf bytes.Buffer
	if err := speciesCmd(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, code := range []string{"PMER", "RRU", "DVU", "SPDIV"} {
		if !strings.Contains(out, code) {
			t.Errorf("species listing missing %q:\n%s", code, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // header + 4 species
		t.Errorf("species listing has %d lines, want 5", lines)
	}
}

func TestCampaignFlags(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantErr  bool
		species  string
		proteins int // expected protein count (0 = don't check)
	}{
		{name: "defaults", args: nil, species: "DVU"},
		{name: "limit", args: []string{"-species", "DVU", "-limit", "7"}, species: "DVU", proteins: 7},
		{name: "limit beyond size is a no-op", args: []string{"-species", "DVU", "-limit", "9999999"}, species: "DVU"},
		{name: "bad species", args: []string{"-species", "NOPE"}, wantErr: true},
		{name: "bad preset", args: []string{"-preset", "warp"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			var cf campaignFlags
			cf.register(fs)
			if err := fs.Parse(tt.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			cr, err := cf.campaign()
			if (err != nil) != tt.wantErr {
				t.Fatalf("campaign() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if cr.sp.Code != tt.species {
				t.Errorf("species = %q, want %q", cr.sp.Code, tt.species)
			}
			if tt.proteins > 0 && len(cr.proteins) != tt.proteins {
				t.Errorf("got %d proteins, want %d", len(cr.proteins), tt.proteins)
			}
			if tt.proteins > 0 && !cr.limited {
				t.Error("limited = false after -limit truncation")
			}
			if cr.cfg.AndesNodes != 96 {
				t.Errorf("AndesNodes = %d, want 96", cr.cfg.AndesNodes)
			}
		})
	}
}

func TestCampaignFlagParseErrors(t *testing.T) {
	// ContinueOnError makes bad flag values return errors instead of
	// exiting, so the commands surface them as normal failures.
	tests := [][]string{
		{"-limit", "many"},
		{"-seed", "-3"},
		{"-nodes", "x"},
		{"-bogus"},
	}
	for _, args := range tests {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(&bytes.Buffer{})
		var cf campaignFlags
		cf.register(fs)
		if err := fs.Parse(args); err == nil {
			t.Errorf("Parse(%v) succeeded, want error", args)
		}
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	// fs.Parse surfaces -h as flag.ErrHelp; main exits 0 on it, so the
	// command funcs must pass it through unwrapped.
	var buf bytes.Buffer
	for name, cmd := range map[string]func() error{
		"generate": func() error { return generateCmd([]string{"-h"}, &buf) },
		"run":      func() error { return runCmd([]string{"-h"}, &buf) },
		"submit":   func() error { return submitCmd([]string{"-h"}, &buf) },
		"worker":   func() error { return workerCmd([]string{"-h"}, &buf) },
		"sched":    func() error { return schedCmd([]string{"-h"}, &buf) },
	} {
		if err := cmd(); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s -h returned %v, want flag.ErrHelp", name, err)
		}
	}
}

func TestGenerateCmd(t *testing.T) {
	var buf bytes.Buffer
	if err := generateCmd([]string{"-species", "DVU"}, &buf); err != nil {
		t.Fatal(err)
	}
	seqs, err := seq.ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("generate output is not valid FASTA: %v", err)
	}
	if len(seqs) != 3205 {
		t.Errorf("generated %d sequences, want 3205", len(seqs))
	}
	if !strings.HasPrefix(seqs[0].ID, "DVU_") {
		t.Errorf("first ID %q does not carry the DVU locus prefix", seqs[0].ID)
	}
}

func TestGenerateCmdToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.fasta")
	var buf bytes.Buffer
	if err := generateCmd([]string{"-species", "PMER", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("generate -out wrote %d bytes to stdout", buf.Len())
	}
	seqs, err := readFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3446 {
		t.Errorf("generated %d sequences, want 3446", len(seqs))
	}
}

func TestGenerateCmdErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := generateCmd([]string{"-species", "NOPE"}, &buf); err == nil {
		t.Error("generate with unknown species succeeded")
	}
	if err := generateCmd([]string{"-seed", "abc"}, &buf); err == nil {
		t.Error("generate with bad seed succeeded")
	}
}

func TestRunCmdWritesStatsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.csv")
	var buf bytes.Buffer
	if err := runCmd([]string{"-species", "DVU", "-limit", "4", "-stats", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("run -stats printed no report")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("run -stats wrote no CSV: %v", err)
	}
	recs, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("stats CSV has %d records, want header + rows", len(recs))
	}
	if !reflect.DeepEqual(recs[0], exec.StatsHeader) {
		t.Errorf("stats CSV header = %v, want %v", recs[0], exec.StatsHeader)
	}
	// 4 feature tasks + 4x5 inference slots + up to 4 relax tasks.
	if len(recs)-1 < 24 {
		t.Errorf("stats CSV has %d task rows, want >= 24", len(recs)-1)
	}
}

func TestWorkerSubmitFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	// Exactly one of -connect / -scheduler-file is required.
	if err := workerCmd(nil, &buf); err == nil {
		t.Error("worker with no address succeeded")
	}
	if err := workerCmd([]string{"-connect", "a", "-scheduler-file", "b"}, &buf); err == nil {
		t.Error("worker with both addresses succeeded")
	}
	if err := submitCmd(nil, &buf); err == nil {
		t.Error("submit with no address succeeded")
	}
	if err := submitCmd([]string{"-connect", "a", "-scheduler-file", "b"}, &buf); err == nil {
		t.Error("submit with both addresses succeeded")
	}
	// The wire codec is validated before any dialing happens.
	if err := workerCmd([]string{"-connect", "a", "-wire", "msgpack"}, &buf); err == nil {
		t.Error("worker with unknown -wire succeeded")
	}
	if err := submitCmd([]string{"-connect", "a", "-wire", "msgpack"}, &buf); err == nil {
		t.Error("submit with unknown -wire succeeded")
	}
	if err := monitorCmd([]string{"-connect", "a", "-wire", "msgpack"}, &buf); err == nil {
		t.Error("monitor with unknown -wire succeeded")
	}
}

func readFASTAFile(path string) ([]seq.Sequence, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return seq.ReadFASTA(bytes.NewReader(data))
}
