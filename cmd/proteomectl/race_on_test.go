//go:build race

package main

// raceEnabled mirrors the harness's -race flag; see race_off_test.go.
const raceEnabled = true
