// Command proteomectl drives the pipeline interactively: generate synthetic
// proteomes, run the three workflow stages against the cluster simulator,
// predict and export individual structures, print campaign reports — and
// deploy the flow dataflow engine across real processes and hosts, with a
// standalone scheduler, remote workers, and a submitting client, mirroring
// the paper's Summit deployment (Section 3.3).
//
// Usage:
//
//	proteomectl generate -species DVU -out proteome.fasta
//	proteomectl run -species DVU -preset genome -nodes 32
//	proteomectl predict -species DVU -id DVU_00001 -out model.pdb
//	proteomectl species
//
// Multi-process deployment (one command per terminal or host):
//
//	proteomectl sched -listen :8786 -scheduler-file sched.json -event-log events.jsonl
//	proteomectl worker -scheduler-file sched.json
//	proteomectl submit -scheduler-file sched.json -species DVU
//	proteomectl monitor -scheduler-file sched.json
//
// The monitor is read-only: it tails the scheduler's structured event
// stream (queue depth, per-worker in-flight, throughput) without any
// cooperation from the submitting client.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/fold"
	"repro/internal/pdb"
	"repro/internal/proteome"
	"repro/internal/relax"
	"repro/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "species":
		err = speciesCmd(os.Stdout)
	case "generate":
		err = generateCmd(os.Args[2:], os.Stdout)
	case "run":
		err = runCmd(os.Args[2:], os.Stdout)
	case "predict":
		err = predictCmd(os.Args[2:])
	case "sched":
		err = schedCmd(os.Args[2:], os.Stdout)
	case "worker":
		err = workerCmd(os.Args[2:], os.Stdout)
	case "submit":
		err = submitCmd(os.Args[2:], os.Stdout)
	case "monitor":
		err = monitorCmd(os.Args[2:], os.Stdout)
	case "top":
		err = topCmd(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		// -h/-help already printed the flag defaults; it is not a failure.
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		// The FlagSet already reported parse errors with usage; exit 2 as
		// flag.ExitOnError would, without printing the message twice.
		if errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "proteomectl: %v\n", err)
		os.Exit(1)
	}
}

// errFlagParse wraps FlagSet.Parse failures, which the FlagSet has
// already printed together with the command's usage.
var errFlagParse = errors.New("invalid command-line flags")

// parseFlags normalizes FlagSet.Parse errors: help requests pass through
// for a clean exit 0, anything else becomes errFlagParse (exit 2, no
// duplicate message).
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errFlagParse
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proteomectl <command> [flags]
commands:
  species                       list the paper's four species
  generate -species C -out F    write a synthetic proteome as FASTA
  run -species C [-preset P] [-nodes N] [-seed S] [-limit K]
      [-executor pool|flow] [-stats F] [-timeline F]
                                run the three-stage pipeline on the simulator
  predict -species C -id ID [-out F] [-seed S]
                                predict + relax one protein, write PDB
  sched -listen A [-scheduler-file F] [-log-placement] [-event-log F]
      [-resume-log] [-max-retries N] [-heartbeat-timeout D] [-event-backlog N]
      [-batch N] [-policy fifo|fair] [-quota N] [-outbox-depth N]
      [-write-timeout D] [-http A]
                                start a standalone dataflow scheduler;
                                -event-log persists the structured task
                                transition stream as JSONL, -resume-log
                                continues an existing log across a restart,
                                -max-retries quarantines poison tasks,
                                -heartbeat-timeout declares silent workers
                                dead, -event-backlog bounds in-memory history,
                                -batch hands a free worker up to N tasks per
                                frame (amortizes per-message cost at scale),
                                -policy fair round-robins handout across
                                campaigns sharing the fleet, -quota defers
                                admission beyond N in-flight tasks per campaign,
                                -outbox-depth bounds each peer's outbound
                                frame queue and -write-timeout its slowest
                                accepted write (an overflowing or wedged peer
                                is declared dead, never the fleet), -http
                                serves the admin endpoint — GET /metrics
                                (live Prometheus series), /healthz (503
                                once shutdown begins), /debug/pprof/
  worker (-connect A | -scheduler-file F) [-id ID] [-heartbeat D] [-dial-retry D]
      [-wire json|binary]
                                start a worker serving the campaign kernels;
                                -dial-retry lets it start before the scheduler,
                                -wire picks the wire codec (binary cuts framing
                                cost; mixed -wire fleets share one scheduler)
  submit (-connect A | -scheduler-file F) -species C [-preset P] [-nodes N]
      [-seed S] [-limit K] [-stats F] [-timeline F] [-summary]
      [-resume F] [-resume-stats F] [-dial-retry D] [-wire json|binary]
      [-campaign NAME]
                                run the campaign on the remote cluster;
                                -stats writes the per-task processing-times
                                CSV, -timeline the measured-vs-simulated
                                worker-timeline SVG, -summary keeps feature
                                and prediction payloads off the wire,
                                -resume/-resume-stats skip tasks an
                                interrupted run already completed (the
                                report stays byte-identical), -campaign
                                names the fair-share/quota namespace on a
                                shared scheduler
  monitor (-connect A | -scheduler-file F) [-json] [-wire json|binary]
      [-campaign NAME]
                                tail a running campaign live (queue depth,
                                per-worker in-flight, throughput) from the
                                scheduler's event stream; read-only;
                                -campaign filters to one campaign's tasks
  top (-connect A | -scheduler-file F) [-interval D] [-metrics-snapshot]
      [-wire json|binary] [-campaign NAME]
                                refreshing dashboard over the same event
                                stream: queue depth, per-campaign
                                queued/running/done/failed, per-worker
                                occupancy, dispatch rate; read-only;
                                -metrics-snapshot instead prints one
                                Prometheus scrape of the stream-derived
                                series once the backlog drains, for
                                scripting without the -http endpoint`)
}

func findSpecies(code string) (proteome.Species, error) {
	for _, sp := range proteome.PaperSpecies() {
		if sp.Code == code {
			return sp, nil
		}
	}
	return proteome.Species{}, fmt.Errorf("unknown species %q (try: PMER, RRU, DVU, SPDIV)", code)
}

func findPreset(name string) (fold.Preset, error) {
	for _, p := range fold.AllPresets() {
		if p.Name == name {
			return p, nil
		}
	}
	return fold.Preset{}, fmt.Errorf("unknown preset %q", name)
}

func speciesCmd(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-40s %-11s %9s\n", "CODE", "NAME", "KINGDOM", "PROTEINS")
	for _, sp := range proteome.PaperSpecies() {
		fmt.Fprintf(w, "%-6s %-40s %-11s %9d\n", sp.Code, sp.Name, sp.Kingdom, sp.NumProteins)
	}
	return nil
}

func generateCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	code := fs.String("species", "DVU", "species code")
	out := fs.String("out", "", "output FASTA path (default stdout)")
	seedv := fs.Uint64("seed", experiments.DefaultSeed, "campaign seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sp, err := findSpecies(*code)
	if err != nil {
		return err
	}
	env := experiments.NewEnv(*seedv)
	p := env.Proteome(sp)
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return seq.WriteFASTA(w, p.Sequences())
}

// campaignFlags is the flag block shared by `run` and `submit`: the same
// campaign must be expressible on the simulator and on a remote cluster so
// the two reports can be compared byte for byte.
type campaignFlags struct {
	species  string
	preset   string
	nodes    int
	seed     uint64
	limit    int
	par      int
	stats    string
	timeline string
}

func (c *campaignFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.species, "species", "DVU", "species code")
	fs.StringVar(&c.preset, "preset", "genome", "inference preset (reduced_dbs, genome, super, casp14)")
	fs.IntVar(&c.nodes, "nodes", 32, "Summit nodes for inference")
	fs.Uint64Var(&c.seed, "seed", experiments.DefaultSeed, "campaign seed")
	fs.IntVar(&c.limit, "limit", 0, "run only the first K proteins (0 = all); smoke-test and e2e knob")
	fs.StringVar(&c.stats, "stats", "", "write the per-task processing-times CSV (task → worker placement, queue/run timings, wire bytes) to this file")
	fs.StringVar(&c.timeline, "timeline", "", "write the Fig-2-style worker-timeline SVG (the recorded run overlaid on the dataflow simulator's prediction for the same tasks, plus queue depth) to this file")
	// -parallelism is registered by `run` only: `submit` computes on the
	// remote workers, so a host pool-size knob would be inert there.
}

// wantTrace reports whether any output flag needs a recorded trace.
func (c *campaignFlags) wantTrace() bool { return c.stats != "" || c.timeline != "" }

// finishStats writes the recorded trace as the processing-times CSV
// and/or the worker-timeline figure, and prints the load-balance summary
// to stderr — stderr, so the stdout report stays byte-identical with
// tracing on or off.
func (c *campaignFlags) finishStats(trace *exec.Trace) error {
	if !c.wantTrace() {
		return nil
	}
	rows := trace.Rows()
	if c.stats != "" {
		f, err := os.Create(c.stats)
		if err != nil {
			return err
		}
		if err := exec.WriteStatsCSV(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := analysis.LoadBalance(rows, 10).Render(os.Stderr); err != nil {
			return err
		}
	}
	if c.timeline != "" {
		title := fmt.Sprintf("%s campaign: %d tasks, measured vs simulated", c.species, len(rows))
		if err := analysis.WriteTimelineFile(c.timeline, rows, title); err != nil {
			return err
		}
	}
	return nil
}

// campaignRun is the resolved world a `run` or `submit` operates on.
type campaignRun struct {
	env      *experiments.Env
	sp       proteome.Species
	proteins []proteome.Protein
	cfg      core.Config
	// limited records that -limit truncated the protein set, so the
	// report header can say so instead of blaming the length exclusion.
	limited bool
}

// campaign resolves the flag block into the world the run operates on.
func (c *campaignFlags) campaign() (*campaignRun, error) {
	sp, err := findSpecies(c.species)
	if err != nil {
		return nil, err
	}
	preset, err := findPreset(c.preset)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnv(c.seed)
	env.Parallelism = c.par
	proteins := env.Proteome(sp).FilterMaxLen(2500)
	limited := c.limit > 0 && c.limit < len(proteins)
	if limited {
		proteins = proteins[:c.limit]
	}
	cfg := core.DefaultConfig()
	cfg.Preset = preset
	cfg.SummitNodes = c.nodes
	cfg.AndesNodes = 96
	cfg.Parallelism = c.par
	return &campaignRun{env: env, sp: sp, proteins: proteins, cfg: cfg, limited: limited}, nil
}

// printReport renders a campaign report. `run` and `submit` share it so a
// remote multi-process run is byte-comparable to a local one.
func printReport(w io.Writer, cr *campaignRun, rep *core.CampaignReport) {
	sp, cfg, preset := cr.sp, cr.cfg, cr.cfg.Preset
	if cr.limited {
		fmt.Fprintf(w, "%s: first %d proteins (of %d; -limit applied, ≥2500 AA excluded)\n", sp.Name, len(cr.proteins), sp.NumProteins)
	} else {
		fmt.Fprintf(w, "%s: %d proteins (of %d; ≥2500 AA excluded)\n", sp.Name, len(cr.proteins), sp.NumProteins)
	}
	fmt.Fprintf(w, "feature generation  %8.1f node-hours, wall %6.1f h on %d Andes workers\n",
		rep.Feature.NodeHours, rep.Feature.WalltimeSec/3600, cfg.AndesNodes)
	fmt.Fprintf(w, "inference (%s)  %8.1f node-hours, wall %6.1f h on %d Summit nodes (%d completed, %d OOM-dropped)\n",
		preset.Name, rep.Inference.NodeHours, rep.Inference.WalltimeSec/3600, cfg.SummitNodes,
		rep.Inference.Completed, rep.Inference.OOMDropped)
	fmt.Fprintf(w, "relaxation          %8.1f node-hours, wall %6.1f min on %d nodes\n",
		rep.Relax.NodeHours, rep.Relax.WalltimeSec/60, cfg.RelaxNodes)
	for _, m := range rep.Ledger.Machines() {
		fmt.Fprintf(w, "ledger[%s] = %.1f node-hours\n", m, rep.Ledger.Total(m))
	}
}

func runCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var cf campaignFlags
	cf.register(fs)
	fs.IntVar(&cf.par, "parallelism", 0, "host worker-pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	executor := fs.String("executor", "pool", "execution back end: pool (in-process) or flow (dataflow scheduler over loopback TCP); results are identical either way")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cr, err := cf.campaign()
	if err != nil {
		return err
	}
	var ex exec.Executor
	switch *executor {
	case "pool", "":
		// The default pool is materialized here (instead of letting the
		// stages resolve one) so a trace can be attached to it.
		ex = exec.NewPool(cf.par)
	case "flow":
		fl, err := exec.NewFlow(cf.par)
		if err != nil {
			return err
		}
		defer fl.Close()
		ex = fl
	default:
		return fmt.Errorf("unknown -executor %q (want pool or flow)", *executor)
	}
	cr.env.Executor = ex
	cr.cfg.Executor = ex
	trace := &exec.Trace{}
	if cf.wantTrace() {
		exec.AttachTrace(ex, trace)
	}

	rep, err := core.RunCampaign(cr.env.Engine, cr.env.FeatureGen(), cr.proteins, cr.env.FS, core.ReducedDatabase(), cr.cfg)
	if err != nil {
		return err
	}
	printReport(stdout, cr, rep)
	return cf.finishStats(trace)
}

// connFlags is the scheduler-connection block shared by every command
// that dials a running scheduler (worker, submit, monitor): the address
// or scheduler file, the dial retry budget, and the wire codec — each
// registered exactly once, here.
type connFlags struct {
	connect   string
	schedFile string
	dialRetry time.Duration
	wire      string
}

func (c *connFlags) register(fs *flag.FlagSet, retryDefault time.Duration) {
	fs.StringVar(&c.connect, "connect", "", "scheduler address (host:port)")
	fs.StringVar(&c.schedFile, "scheduler-file", "", "scheduler file to read the address from")
	fs.DurationVar(&c.dialRetry, "dial-retry", retryDefault, "keep retrying the scheduler (and a missing scheduler file) with backoff for this long (0 = one attempt)")
	fs.StringVar(&c.wire, "wire", "json", "wire codec: json (compatible with every release) or binary (length-prefixed frames — cheaper per message on dispatch-heavy fleets); peers with different -wire values interoperate on one scheduler")
}

func (c *connFlags) validate(cmd string) error {
	if (c.connect == "") == (c.schedFile == "") {
		return fmt.Errorf("%s needs exactly one of -connect or -scheduler-file", cmd)
	}
	if !flow.ValidWire(c.wire) {
		return fmt.Errorf("%s: unknown -wire %q (want json or binary)", cmd, c.wire)
	}
	return nil
}

// dialOptions converts the flag block into the one options struct every
// flow dialer consumes.
func (c *connFlags) dialOptions() flow.DialOptions {
	return flow.DialOptions{
		Addr:          c.connect,
		SchedulerFile: c.schedFile,
		Retry:         c.dialRetry,
		Codec:         c.wire,
	}
}

// schedOptions is the `sched` flag block.
type schedOptions struct {
	listen           string
	schedFile        string
	logPlacement     bool
	eventLog         string
	resumeLog        bool
	maxRetries       int
	heartbeatTimeout time.Duration
	eventBacklog     int
	batch            int
	policy           string
	quota            int
	outboxDepth      int
	writeTimeout     time.Duration
	httpAddr         string
	pprofAddr        string
}

// adminAddr resolves the admin endpoint address: -http, or the deprecated
// -pprof alias it grew out of (same listener, now also serving /metrics
// and /healthz).
func (o *schedOptions) adminAddr() string {
	if o.httpAddr != "" {
		return o.httpAddr
	}
	return o.pprofAddr
}

func (o *schedOptions) register(fs *flag.FlagSet) {
	fs.StringVar(&o.listen, "listen", "127.0.0.1:8786", "address to listen on (host:port; port 0 picks one)")
	fs.StringVar(&o.schedFile, "scheduler-file", "", "write a JSON scheduler file advertising the bound address")
	fs.BoolVar(&o.logPlacement, "log-placement", false, "log every task assignment and completion to stdout")
	fs.StringVar(&o.eventLog, "event-log", "", "persist the structured task-transition stream (received/queued/assigned/running/done/failed + worker join/leave) as JSONL to this file; replayable offline with events.ReadLog")
	fs.BoolVar(&o.resumeLog, "resume-log", false, "on restart, replay an existing -event-log first: the stream continues where the crashed scheduler stopped (a torn final record is discarded), so monitors still see the full campaign backlog and `submit -resume` can skip completed tasks")
	fs.IntVar(&o.maxRetries, "max-retries", 3, "requeue a task whose worker died at most this many times, then quarantine it with a terminal failed event (0 = requeue forever)")
	fs.DurationVar(&o.heartbeatTimeout, "heartbeat-timeout", 0, "declare a worker dead after this long without a heartbeat or result and requeue its task (0 disables; workers must send -heartbeat at a few multiples below this)")
	fs.IntVar(&o.eventBacklog, "event-backlog", 0, "retain at most this many events in memory for late-attaching monitors, evicting oldest-first with an explicit truncated marker (0 = unbounded; the -event-log file always keeps everything)")
	fs.IntVar(&o.batch, "batch", 1, "hand a free worker up to this many tasks per frame (acked in one frame back), amortizing per-message cost at scale; negotiated per worker, so peers that predate batching get one task per frame")
	fs.StringVar(&o.policy, "policy", flow.PolicyFIFO, "queue policy: fifo (strict arrival order) or fair (round-robin handout across campaigns sharing the fleet; tasks name their campaign via submit -campaign)")
	fs.IntVar(&o.quota, "quota", 0, "admit at most this many unfinished tasks per campaign, deferring the rest (and their submit ack) until earlier tasks settle; 0 = unlimited")
	fs.IntVar(&o.outboxDepth, "outbox-depth", flow.DefaultOutboxDepth, "bound each peer connection's outbound frame queue to this many frames; a peer whose queue overflows is declared dead and its tasks requeue (size it at least as large as the biggest in-flight wave one client awaits)")
	fs.DurationVar(&o.writeTimeout, "write-timeout", flow.DefaultWriteTimeout, "declare a peer dead when a single write to it blocks this long (its kernel buffers full and not draining); its in-flight tasks requeue to healthy workers (0 = block forever)")
	fs.StringVar(&o.httpAddr, "http", "", "serve the admin HTTP endpoint on this address (e.g. localhost:6060): GET /metrics (live cluster metrics, Prometheus text format), /healthz (200 while serving, 503 once shutdown begins), and /debug/pprof/; off unless set; the bound address is advertised in the scheduler file so `proteomectl top -metrics-snapshot` and probes can find it")
	fs.StringVar(&o.pprofAddr, "pprof", "", "deprecated alias for -http (the profile endpoints moved onto the admin listener)")
}

// scheduler builds the configured scheduler (not yet started).
func (o *schedOptions) scheduler() *flow.Scheduler {
	s := flow.NewScheduler()
	s.MaxRetries = o.maxRetries
	s.HeartbeatTimeout = o.heartbeatTimeout
	s.Batch = o.batch
	s.Policy = o.policy
	s.Quota = o.quota
	s.OutboxDepth = o.outboxDepth
	s.WriteTimeout = o.writeTimeout
	if o.eventBacklog > 0 {
		s.Events().SetLimit(o.eventBacklog)
	}
	return s
}

// schedCmd runs a standalone dataflow scheduler until interrupted —
// terminal 1 of the three-terminal deployment. The scheduler file it
// writes is how workers and clients find it, as in the paper's Summit
// deployment (Dask's scheduler-file mechanism).
func schedCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sched", flag.ContinueOnError)
	var o schedOptions
	o.register(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	s := o.scheduler()
	if o.adminAddr() != "" {
		// Metrics ride the admin endpoint: the registry exists before
		// Start so the event sink is attached, and the listener binds
		// after Start so /healthz never reports 200 for a scheduler that
		// failed to come up.
		s.Metrics = flow.NewSchedulerMetrics(nil)
	}
	if o.logPlacement {
		s.PlacementLog = stdout
	}
	if o.eventLog != "" {
		var restored []events.Event
		if o.resumeLog {
			if data, err := os.ReadFile(o.eventLog); err == nil {
				// A tail torn by the crash is expected: restore the intact
				// prefix and rewrite the file as one valid stream.
				evs, rerr := events.ReadLog(bytes.NewReader(data))
				if rerr != nil {
					fmt.Fprintf(os.Stderr, "proteomectl: event log: discarding torn tail after %d events: %v\n", len(evs), rerr)
				}
				restored = evs
			} else if !os.IsNotExist(err) {
				return err
			}
		}
		f, err := os.Create(o.eventLog)
		if err != nil {
			return err
		}
		defer f.Close()
		if len(restored) > 0 {
			// Re-encode the intact prefix so the final file decodes as a
			// single contiguous stream across the restart.
			sink := events.LogSink(f)
			for _, e := range restored {
				sink(e)
			}
			if err := s.RestoreEvents(restored); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "resumed event log: %d events restored\n", len(restored))
		}
		s.EventLog = f
	}
	addr, err := s.Start(o.listen)
	if err != nil {
		return err
	}
	defer s.Close()
	if a := o.adminAddr(); a != "" {
		bound, err := startAdmin(a, s.Metrics.Registry(), s.Healthy)
		if err != nil {
			return err
		}
		// Advertise the admin endpoint in the scheduler file (written
		// below) so tooling discovers it alongside the dispatch address.
		s.AdminHTTP = bound
		fmt.Fprintf(stdout, "admin endpoint on http://%s/ (/metrics, /healthz, /debug/pprof/)\n", bound)
	}
	if o.schedFile != "" {
		if err := s.WriteSchedulerFile(o.schedFile); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "flow scheduler listening on %s\n", addr)
	waitForSignal()
	return nil
}

// workerOptions is the `worker` flag block: the shared connection flags
// plus worker identity and heartbeat cadence.
type workerOptions struct {
	conn      connFlags
	id        string
	heartbeat time.Duration
}

func (o *workerOptions) register(fs *flag.FlagSet) {
	o.conn.register(fs, 30*time.Second)
	fs.StringVar(&o.id, "id", fmt.Sprintf("worker-%d", os.Getpid()), "worker identity")
	fs.DurationVar(&o.heartbeat, "heartbeat", 15*time.Second, "send a liveness heartbeat to the scheduler on this interval (0 disables); pair with sched -heartbeat-timeout to detect wedged workers")
}

// workerCmd runs one dataflow worker serving the registered campaign
// kernels — terminal 2 (started once per GPU in the paper, up to 6,000
// times). It exits when interrupted or when the scheduler goes away.
func workerCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var o workerOptions
	o.register(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := o.conn.validate("worker"); err != nil {
		return err
	}
	experiments.RegisterCampaignKernels()
	w := flow.NewWorker(o.id, flow.SpecHandler())
	w.HeartbeatInterval = o.heartbeat
	if err := w.Dial(o.conn.dialOptions()); err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(stdout, "worker %s serving kernels %v\n", o.id, flow.DefaultRegistry().Names())

	// Exit on a signal or when the scheduler connection drops.
	done := make(chan struct{})
	go func() {
		w.Wait()
		close(done)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-done:
	case <-sig:
	}
	return nil
}

// submitCmd runs the campaign against a remote cluster — terminal 3, the
// driving script. Every stage ships named-job specs to the workers; the
// printed report is byte-identical to `run -executor=pool`.
// submitOptions is the `submit` flag block: the shared connection flags,
// the campaign definition, and the submit-only result handling knobs.
type submitOptions struct {
	conn          connFlags
	cf            campaignFlags
	resultTimeout time.Duration
	summary       bool
	resume        string
	resumeStats   string
	campaign      string
}

func (o *submitOptions) register(fs *flag.FlagSet) {
	o.cf.register(fs)
	o.conn.register(fs, 10*time.Second)
	fs.DurationVar(&o.resultTimeout, "result-timeout", flow.DefaultResultTimeout,
		"fail when no result arrives for this long (0 disables); raise it when individual tasks run long")
	fs.BoolVar(&o.summary, "summary", false,
		"summary-only results: feature kernels return a digest instead of full per-protein features, cutting wire bytes; the printed report is byte-identical")
	fs.StringVar(&o.resume, "resume", "", "resume an interrupted campaign from a scheduler event log (sched -event-log): tasks recorded done are recomputed locally instead of re-dispatched; the report is byte-identical to an uninterrupted run")
	fs.StringVar(&o.resumeStats, "resume-stats", "", "like -resume, from a processing-times CSV of the interrupted run (-stats); combinable with -resume")
	fs.StringVar(&o.campaign, "campaign", "", "campaign name stamped on every submitted task: the fair-share lane and admission-quota namespace on a shared scheduler (sched -policy fair / -quota), and the monitor -campaign filter key; empty keeps single-tenant behavior")
}

// completedSet merges the -resume / -resume-stats sources into one set of
// already-finished task IDs, or returns nil when neither flag was given.
func (o *submitOptions) completedSet() (*events.CompletedSet, error) {
	if o.resume == "" && o.resumeStats == "" {
		return nil, nil
	}
	set := events.NewCompletedSet()
	if o.resume != "" {
		f, err := os.Open(o.resume)
		if err != nil {
			return nil, err
		}
		logSet, err := events.CompletedFromLog(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		set.Merge(logSet)
	}
	if o.resumeStats != "" {
		f, err := os.Open(o.resumeStats)
		if err != nil {
			return nil, err
		}
		ids, err := exec.CompletedFromStatsCSV(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		set.AddAll(ids)
	}
	return set, nil
}

func submitCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	var o submitOptions
	o.register(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := o.conn.validate("submit"); err != nil {
		return err
	}
	cf := &o.cf
	cr, err := cf.campaign()
	if err != nil {
		return err
	}
	set, err := o.completedSet()
	if err != nil {
		return err
	}
	if set != nil {
		// Stderr, so the stdout report stays byte-identical to an
		// uninterrupted run.
		fmt.Fprintf(os.Stderr, "resume: %d tasks already completed; dispatching only the remainder\n", set.Len())
		cr.cfg.Resume = set.Done
	}
	fl, err := exec.Connect(o.conn.dialOptions())
	if err != nil {
		return err
	}
	defer fl.Close()
	fl.SetResultTimeout(o.resultTimeout)
	if o.campaign != "" {
		fl.SetCampaign(o.campaign)
	}
	trace := &exec.Trace{}
	if cf.wantTrace() {
		fl.SetTrace(trace)
	}
	cr.cfg.Executor = fl
	cr.cfg.Remote = &core.RemoteCampaign{Seed: cf.seed, Species: cr.sp.Code}
	cr.cfg.SummaryOnly = o.summary

	rep, err := core.RunCampaign(cr.env.Engine, cr.env.FeatureGen(), cr.proteins, cr.env.FS, core.ReducedDatabase(), cr.cfg)
	if err != nil {
		return err
	}
	printReport(stdout, cr, rep)
	return cf.finishStats(trace)
}

// monitorCmd attaches a read-only monitor to a running scheduler — the
// fourth terminal of the deployment. It needs no cooperation from the
// submitting client: the scheduler replays its full event backlog, then
// streams live transitions, and the monitor renders queue depth,
// per-worker in-flight counts, and throughput as they change. Attaching
// or detaching never perturbs the campaign (the report is byte-identical
// with or without a monitor connected).
func monitorCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	var conn connFlags
	conn.register(fs, 0)
	jsonOut := fs.Bool("json", false, "print raw event records as JSONL (the sched -event-log format) instead of live summary lines")
	campaign := fs.String("campaign", "", "only show task events for this campaign (submit -campaign); fleet-wide events (worker join/leave, truncation) always pass")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := conn.validate("monitor"); err != nil {
		return err
	}
	m, err := flow.DialMonitor(conn.dialOptions())
	if err != nil {
		return err
	}
	m.Campaign = *campaign
	defer m.Close()
	// Detach on a signal: closing the monitor fails the blocking Next, so
	// the loop ends cleanly and prints its summary.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		m.Close()
	}()
	return runMonitor(m, stdout, *jsonOut)
}

// eventSource is the stream runMonitor drains — flow.Monitor in
// production, a scripted source in tests.
type eventSource interface {
	Next() (events.Event, error)
}

// runMonitor drains the monitor's event stream until the scheduler goes
// away or the monitor is closed. In raw mode every event is echoed as
// JSONL — byte-identical to the scheduler's -event-log file, which the
// e2e suite exploits. Otherwise each event becomes one live summary line
// followed by a closing throughput summary. A clean stream end
// (scheduler shutdown, Ctrl-C detach — flow.ErrStreamEnd) is the normal
// exit; any other error (invalid frame, abrupt reset) is surfaced, so a
// truncated -json capture never masquerades as a complete log.
func runMonitor(m eventSource, w io.Writer, raw bool) error {
	if raw {
		enc := json.NewEncoder(w)
		for {
			e, err := m.Next()
			if err != nil {
				if errors.Is(err, flow.ErrStreamEnd) {
					return nil
				}
				return err
			}
			if err := enc.Encode(e); err != nil {
				return err
			}
		}
	}
	tr := events.NewTracker()
	firstNS := int64(-1)
	for {
		e, err := m.Next()
		if err != nil {
			if !errors.Is(err, flow.ErrStreamEnd) {
				return err
			}
			break
		}
		tr.Observe(e)
		if firstNS < 0 {
			firstNS = e.TimeNS
		}
		subject := e.Task
		if subject == "" {
			subject = e.Worker
		}
		detail := ""
		switch {
		case e.Err != "":
			detail = " err=" + e.Err
		case e.Type == events.TaskAssigned || e.Type == events.TaskRunning ||
			e.Type == events.TaskDone || e.Type == events.TaskFailed:
			detail = " worker=" + e.Worker
		}
		fmt.Fprintf(w, "%12.3fs %-11s %-24s queue=%-5d busy=%-4d done=%-6d failed=%-3d workers=%d%s\n",
			e.Seconds(), e.Type, subject,
			tr.QueueDepth, tr.Busy(), tr.Done, tr.Failed, len(tr.Workers), detail)
	}
	span := float64(tr.LastNS-firstNS) / 1e9
	throughput := 0.0
	if span > 0 {
		throughput = float64(tr.Done) / span
	}
	fmt.Fprintf(w, "monitor: %d received, %d done, %d failed, %d dropped over %.3f s (%.2f tasks/s)\n",
		tr.Received, tr.Done, tr.Failed, tr.Dropped, span, throughput)
	return nil
}

func waitForSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

func predictCmd(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	code := fs.String("species", "DVU", "species code")
	id := fs.String("id", "", "protein ID (e.g. DVU_00001)")
	out := fs.String("out", "", "output PDB path (default stdout)")
	seedv := fs.Uint64("seed", experiments.DefaultSeed, "campaign seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	sp, err := findSpecies(*code)
	if err != nil {
		return err
	}
	env := experiments.NewEnv(*seedv)
	p := env.Proteome(sp)
	var target *proteome.Protein
	for i := range p.Proteins {
		if p.Proteins[i].Seq.ID == *id {
			target = &p.Proteins[i]
			break
		}
	}
	if target == nil {
		return fmt.Errorf("no protein %q in %s", *id, sp.Code)
	}

	feats, err := env.FeatureGen().Features(*target)
	if err != nil {
		return err
	}
	// Five models, keep the best by pTMS, then materialize and relax it.
	best, bestModel := -1.0, 0
	for m := 0; m < fold.NumModels; m++ {
		pred, err := env.Engine.Infer(fold.Task{
			ID: target.Seq.ID, Length: target.Seq.Len(), Features: feats,
			Model: m, Preset: fold.Genome, NodeMemGB: 64,
		})
		if err != nil {
			return err
		}
		if pred.PTMS > best {
			best, bestModel = pred.PTMS, m
		}
	}
	pred, err := env.Engine.Infer(fold.Task{
		ID: target.Seq.ID, Length: target.Seq.Len(), Features: feats,
		Model: bestModel, Preset: fold.Genome, NodeMemGB: 64, WantCoords: true,
	})
	if err != nil {
		return err
	}
	rr, err := relax.Relax(pred.CA, pred.SC, relax.DefaultOptions(relax.PlatformGPU))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: model %d, pLDDT %.1f, pTMS %.3f, %d recycles; violations %d->%d bumps\n",
		*id, bestModel+1, pred.MeanPLDDT, pred.PTMS, pred.Recycles, rr.Before.Bumps, rr.After.Bumps)

	model, err := pdb.FromTrace(target.Seq.ID, target.Seq.Residues, rr.CA, rr.SC, pred.PLDDT)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return pdb.Write(w, model)
}
