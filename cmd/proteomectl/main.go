// Command proteomectl drives the pipeline interactively: generate synthetic
// proteomes, run the three workflow stages against the cluster simulator,
// predict and export individual structures, and print campaign reports.
//
// Usage:
//
//	proteomectl generate -species DVU -out proteome.fasta
//	proteomectl run -species DVU -preset genome -nodes 32
//	proteomectl predict -species DVU -id DVU_00001 -out model.pdb
//	proteomectl species
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/fold"
	"repro/internal/pdb"
	"repro/internal/proteome"
	"repro/internal/relax"
	"repro/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "species":
		err = speciesCmd()
	case "generate":
		err = generateCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "predict":
		err = predictCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteomectl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: proteomectl <command> [flags]
commands:
  species                       list the paper's four species
  generate -species C -out F    write a synthetic proteome as FASTA
  run -species C [-preset P] [-nodes N] [-seed S] [-executor pool|flow]
                                run the three-stage pipeline on the simulator
  predict -species C -id ID [-out F] [-seed S]
                                predict + relax one protein, write PDB`)
}

func findSpecies(code string) (proteome.Species, error) {
	for _, sp := range proteome.PaperSpecies() {
		if sp.Code == code {
			return sp, nil
		}
	}
	return proteome.Species{}, fmt.Errorf("unknown species %q (try: PMER, RRU, DVU, SPDIV)", code)
}

func speciesCmd() error {
	fmt.Printf("%-6s %-40s %-11s %9s\n", "CODE", "NAME", "KINGDOM", "PROTEINS")
	for _, sp := range proteome.PaperSpecies() {
		fmt.Printf("%-6s %-40s %-11s %9d\n", sp.Code, sp.Name, sp.Kingdom, sp.NumProteins)
	}
	return nil
}

func generateCmd(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	code := fs.String("species", "DVU", "species code")
	out := fs.String("out", "", "output FASTA path (default stdout)")
	seedv := fs.Uint64("seed", experiments.DefaultSeed, "campaign seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := findSpecies(*code)
	if err != nil {
		return err
	}
	env := experiments.NewEnv(*seedv)
	p := env.Proteome(sp)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return seq.WriteFASTA(w, p.Sequences())
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	code := fs.String("species", "DVU", "species code")
	presetName := fs.String("preset", "genome", "inference preset (reduced_dbs, genome, super, casp14)")
	nodes := fs.Int("nodes", 32, "Summit nodes for inference")
	seedv := fs.Uint64("seed", experiments.DefaultSeed, "campaign seed")
	par := fs.Int("parallelism", 0, "host worker-pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	executor := fs.String("executor", "pool", "execution back end: pool (in-process) or flow (dataflow scheduler over loopback TCP); results are identical either way")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := findSpecies(*code)
	if err != nil {
		return err
	}
	var preset fold.Preset
	found := false
	for _, p := range fold.AllPresets() {
		if p.Name == *presetName {
			preset = p
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown preset %q", *presetName)
	}

	env := experiments.NewEnv(*seedv)
	env.Parallelism = *par
	p := env.Proteome(sp)
	proteins := p.FilterMaxLen(2500)
	cfg := core.DefaultConfig()
	cfg.Preset = preset
	cfg.SummitNodes = *nodes
	cfg.AndesNodes = 96
	cfg.Parallelism = *par
	switch *executor {
	case "pool", "":
		// default: in-process pool bounded at -parallelism
	case "flow":
		fl, err := exec.NewFlow(*par)
		if err != nil {
			return err
		}
		defer fl.Close()
		env.Executor = fl
		cfg.Executor = fl
	default:
		return fmt.Errorf("unknown -executor %q (want pool or flow)", *executor)
	}

	rep, err := core.RunCampaign(env.Engine, env.FeatureGen(), proteins, env.FS, core.ReducedDatabase(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d proteins (of %d; ≥2500 AA excluded)\n", sp.Name, len(proteins), sp.NumProteins)
	fmt.Printf("feature generation  %8.1f node-hours, wall %6.1f h on %d Andes workers\n",
		rep.Feature.NodeHours, rep.Feature.WalltimeSec/3600, cfg.AndesNodes)
	fmt.Printf("inference (%s)  %8.1f node-hours, wall %6.1f h on %d Summit nodes (%d completed, %d OOM-dropped)\n",
		preset.Name, rep.Inference.NodeHours, rep.Inference.WalltimeSec/3600, *nodes,
		rep.Inference.Completed, rep.Inference.OOMDropped)
	fmt.Printf("relaxation          %8.1f node-hours, wall %6.1f min on %d nodes\n",
		rep.Relax.NodeHours, rep.Relax.WalltimeSec/60, cfg.RelaxNodes)
	for _, m := range rep.Ledger.Machines() {
		fmt.Printf("ledger[%s] = %.1f node-hours\n", m, rep.Ledger.Total(m))
	}
	return nil
}

func predictCmd(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	code := fs.String("species", "DVU", "species code")
	id := fs.String("id", "", "protein ID (e.g. DVU_00001)")
	out := fs.String("out", "", "output PDB path (default stdout)")
	seedv := fs.Uint64("seed", experiments.DefaultSeed, "campaign seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	sp, err := findSpecies(*code)
	if err != nil {
		return err
	}
	env := experiments.NewEnv(*seedv)
	p := env.Proteome(sp)
	var target *proteome.Protein
	for i := range p.Proteins {
		if p.Proteins[i].Seq.ID == *id {
			target = &p.Proteins[i]
			break
		}
	}
	if target == nil {
		return fmt.Errorf("no protein %q in %s", *id, sp.Code)
	}

	feats, err := env.FeatureGen().Features(*target)
	if err != nil {
		return err
	}
	// Five models, keep the best by pTMS, then materialize and relax it.
	best, bestModel := -1.0, 0
	for m := 0; m < fold.NumModels; m++ {
		pred, err := env.Engine.Infer(fold.Task{
			ID: target.Seq.ID, Length: target.Seq.Len(), Features: feats,
			Model: m, Preset: fold.Genome, NodeMemGB: 64,
		})
		if err != nil {
			return err
		}
		if pred.PTMS > best {
			best, bestModel = pred.PTMS, m
		}
	}
	pred, err := env.Engine.Infer(fold.Task{
		ID: target.Seq.ID, Length: target.Seq.Len(), Features: feats,
		Model: bestModel, Preset: fold.Genome, NodeMemGB: 64, WantCoords: true,
	})
	if err != nil {
		return err
	}
	rr, err := relax.Relax(pred.CA, pred.SC, relax.DefaultOptions(relax.PlatformGPU))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: model %d, pLDDT %.1f, pTMS %.3f, %d recycles; violations %d->%d bumps\n",
		*id, bestModel+1, pred.MeanPLDDT, pred.PTMS, pred.Recycles, rr.Before.Bumps, rr.After.Bumps)

	model, err := pdb.FromTrace(target.Seq.ID, target.Seq.Residues, rr.CA, rr.SC, pred.PLDDT)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return pdb.Write(w, model)
}
