package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/events"
	"repro/internal/flow"
)

// topCmd is the cluster dashboard — the terminal answer to the Dask
// dashboard the paper leans on for live campaign visibility. It attaches
// over the same read-only monitor protocol as `monitor`, but instead of
// one line per event it folds the stream into a refreshing table: global
// queue depth and dispatch rate, per-campaign queued/running/done/failed,
// and per-worker occupancy. With -metrics-snapshot it prints a single
// Prometheus text scrape derived from the stream (the same series `sched
// -http` serves on /metrics) and exits — for scripts and tests that have
// no HTTP endpoint to curl.
func topCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	var conn connFlags
	conn.register(fs, 0)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval for the live table")
	campaign := fs.String("campaign", "", "only count task events for this campaign (submit -campaign); fleet-wide events (worker join/leave, truncation) always pass")
	snapshot := fs.Bool("metrics-snapshot", false, "print one Prometheus text scrape derived from the event stream once the backlog drains, then exit")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := conn.validate("top"); err != nil {
		return err
	}
	m, err := flow.DialMonitor(conn.dialOptions())
	if err != nil {
		return err
	}
	m.Campaign = *campaign
	defer m.Close()
	// Detach on a signal, exactly like monitor: closing the monitor fails
	// the blocking Next, the loop renders once more and exits cleanly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		m.Close()
	}()
	return runTop(m, stdout, topOptions{interval: *interval, snapshot: *snapshot, clear: true})
}

type topOptions struct {
	// interval is the live-table refresh period; renders also happen once
	// at stream end regardless.
	interval time.Duration
	// snapshot switches to one-shot Prometheus output: the stream is
	// folded into a flow.SchedulerMetrics and dumped after the backlog
	// drains (snapshotQuiet with no events) or the stream ends.
	snapshot bool
	// clear prefixes each render with an ANSI clear-screen, giving the
	// refreshing-dashboard effect on a terminal. Off in tests.
	clear bool
}

// snapshotQuiet is how long the stream must stay silent before a
// -metrics-snapshot is considered caught up with the scheduler's backlog
// replay and printed.
const snapshotQuiet = 500 * time.Millisecond

// runTop drains the monitor stream through a reader goroutine so the
// select below can interleave events with the refresh ticker (a blocking
// Next would freeze the table between events). A clean stream end
// (scheduler shutdown, Ctrl-C detach — flow.ErrStreamEnd) triggers a
// final render and exits 0; any other error is surfaced.
func runTop(src eventSource, w io.Writer, opts topOptions) error {
	type item struct {
		e   events.Event
		err error
	}
	ch := make(chan item, 256)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			e, err := src.Next()
			select {
			case ch <- item{e: e, err: err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	if opts.snapshot {
		m := flow.NewSchedulerMetrics(nil)
		timer := time.NewTimer(snapshotQuiet)
		defer timer.Stop()
		for {
			select {
			case it := <-ch:
				if it.err != nil {
					if !errors.Is(it.err, flow.ErrStreamEnd) {
						return it.err
					}
					return m.WritePrometheus(w)
				}
				m.Observe(it.e)
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(snapshotQuiet)
			case <-timer.C:
				return m.WritePrometheus(w)
			}
		}
	}

	st := newTopState()
	var tick <-chan time.Time
	if opts.interval > 0 {
		ticker := time.NewTicker(opts.interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case it := <-ch:
			if it.err != nil {
				if !errors.Is(it.err, flow.ErrStreamEnd) {
					return it.err
				}
				st.render(w, opts.clear)
				return nil
			}
			st.observe(it.e)
		case <-tick:
			st.render(w, opts.clear)
		}
	}
}

// topWorker is one worker's accumulated execution history as seen from
// the event stream — the live counterpart of analysis.WorkerOccupancy.
type topWorker struct {
	joinNS int64
	leftNS int64 // 0 while connected
	busyNS int64 // closed busy intervals; open ones are added at render
	tasks  int
}

type openTask struct {
	worker  string
	startNS int64
}

// topState folds the event stream into everything one table render needs:
// the global Tracker counters, per-campaign tallies, and per-worker busy
// intervals (assigned → done/failed, cut short by a worker death — the
// same convention analysis.ReplayOccupancy uses offline).
type topState struct {
	tr      *events.Tracker
	cv      *events.CampaignView
	workers map[string]*topWorker
	open    map[string]openTask
	firstNS int64
	seen    bool
}

func newTopState() *topState {
	return &topState{
		tr:      events.NewTracker(),
		cv:      events.NewCampaignView(),
		workers: make(map[string]*topWorker),
		open:    make(map[string]openTask),
	}
}

func (t *topState) observe(e events.Event) {
	if !t.seen {
		t.firstNS = e.TimeNS
		t.seen = true
	}
	t.tr.Observe(e)
	t.cv.Observe(e)
	switch e.Type {
	case events.WorkerJoin:
		t.workers[e.Worker] = &topWorker{joinNS: e.TimeNS}
	case events.WorkerLeave, events.WorkerLost:
		if ws := t.workers[e.Worker]; ws != nil && ws.leftNS == 0 {
			ws.leftNS = e.TimeNS
		}
		for task, iv := range t.open {
			if iv.worker == e.Worker {
				t.closeInterval(task, e.TimeNS)
			}
		}
	case events.TaskAssigned:
		// A monitor attached mid-run can see an assignment for a worker
		// whose join predates the backlog; invent the worker at first
		// sight so its row still appears.
		if t.workers[e.Worker] == nil {
			t.workers[e.Worker] = &topWorker{joinNS: e.TimeNS}
		}
		t.open[e.Task] = openTask{worker: e.Worker, startNS: e.TimeNS}
	case events.TaskDone, events.TaskFailed:
		t.closeInterval(e.Task, e.TimeNS)
	case events.TaskQueued:
		if e.Attempt > 0 {
			// Requeue after a loss: the worker_lost already closed the
			// interval; drop any stale leftover.
			delete(t.open, e.Task)
		}
	}
}

func (t *topState) closeInterval(task string, nowNS int64) {
	iv, ok := t.open[task]
	if !ok {
		return
	}
	delete(t.open, task)
	if ws := t.workers[iv.worker]; ws != nil {
		ws.busyNS += nowNS - iv.startNS
		ws.tasks++
	}
}

func (t *topState) render(w io.Writer, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	tr := t.tr
	rate := 0.0
	if span := tr.LastNS - t.firstNS; t.seen && span > 0 {
		rate = float64(tr.Done) / (float64(span) / 1e9)
	}
	fmt.Fprintf(w, "top: queue=%d busy=%d workers=%d done=%d failed=%d dropped=%d %.2f tasks/s\n",
		tr.QueueDepth, tr.Busy(), len(tr.Workers), tr.Done, tr.Failed, tr.Dropped, rate)

	if names := t.cv.Campaigns(); len(names) > 0 {
		fmt.Fprintf(w, "\n%-24s %7s %7s %7s %7s\n", "CAMPAIGN", "QUEUED", "RUNNING", "DONE", "FAILED")
		for _, name := range names {
			c := t.cv.Tally(name)
			label := name
			if label == "" {
				label = "(unnamed)"
			}
			fmt.Fprintf(w, "%-24s %7d %7d %7d %7d\n", label, c.Queued, c.Running, c.Done, c.Failed)
		}
	}

	if len(t.workers) > 0 {
		fmt.Fprintf(w, "\n%-16s %6s %9s %6s\n", "WORKER", "TASKS", "BUSY", "OCC%")
		names := make([]string, 0, len(t.workers))
		for name := range t.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ws := t.workers[name]
			busy := ws.busyNS
			for _, iv := range t.open {
				if iv.worker == name {
					busy += tr.LastNS - iv.startNS
				}
			}
			end := ws.leftNS
			if end == 0 {
				end = tr.LastNS
			}
			occ := 0.0
			if span := end - ws.joinNS; span > 0 {
				occ = float64(busy) / float64(span) * 100
			}
			gone := ""
			if ws.leftNS != 0 {
				gone = " gone"
			}
			fmt.Fprintf(w, "%-16s %6d %8.1fs %6.1f%s\n", name, ws.tasks, float64(busy)/1e9, occ, gone)
		}
	}
}
