package main

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ handlers on DefaultServeMux
)

// startPprof serves the standard net/http/pprof endpoints on addr —
// `sched -pprof localhost:6060` — so a live scheduler can be profiled
// under load (go tool pprof http://localhost:6060/debug/pprof/profile)
// without rebuilding or restarting it. The listen happens synchronously
// so a bad address fails the command instead of logging from a
// goroutine; serving is fire-and-forget for the process lifetime. The
// bound address is returned because addr may carry port 0.
func startPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}
