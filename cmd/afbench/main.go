// Command afbench regenerates every table and figure of the paper and
// prints paper-versus-measured reports.
//
// Usage:
//
//	afbench [-seed N] [-parallelism N] [-executor pool|flow] <experiment>
//
// where <experiment> is one of: table1, fig2, fig3, fig4, features,
// recycles, sdivinum, violations, genomerelax, annotate, campaign, or all.
//
// -executor selects the execution back end: "pool" (default) fans compute
// out over the in-process worker pool, "flow" serializes it through the
// dataflow scheduler/worker/client protocol over loopback TCP. Results
// are byte-identical either way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/exec"
	"repro/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(*experiments.Env, io.Writer) error
}

var runners = []runner{
	{"table1", "Table 1: preset benchmark (559 sequences, 4 presets)", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Table1(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"fig2", "Fig 2: worker timeline distribution (1200 workers)", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Fig2(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"fig3", "Fig 3: relaxation quality (TM / SPECS before vs after)", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Fig3(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"fig4", "Fig 4: relaxation time vs heavy atoms, speedups", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Fig4(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"features", "Sec 4.1: feature generation vs inference node-hours", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.FeatureGenExperiment(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"recycles", "Sec 4.2: recycle-improvement distribution", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.RecycleGains(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"sdivinum", "Sec 4.3.1: S. divinum proteome statistics", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.SDivinum(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"violations", "Sec 4.4: clash/bump reduction across methods", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Violations(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"genomerelax", "Sec 4.5: genome-scale relaxation workflow", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.GenomeRelax(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"annotate", "Sec 4.6: hypothetical-protein structural annotation", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Annotation(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"campaign", "Full 4-proteome campaign and node-hour budget", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Campaign(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"ablations", "Design-choice ablations (ordering, granularity, replicas, recycles)", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.Ablations(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"gpusearch", "GPU-accelerated MSA search (conclusion's discussion)", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.GPUSearch(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
	{"complex", "AF2Complex extension: all-vs-all interaction screen", func(e *experiments.Env, w io.Writer) error {
		r, err := experiments.ComplexScreen(e)
		if err != nil {
			return err
		}
		return r.Render(w)
	}},
}

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "campaign seed (changing it changes every measured number)")
	par := flag.Int("parallelism", 0, "host worker-pool size (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	executor := flag.String("executor", "pool", "execution back end: pool (in-process) or flow (dataflow scheduler over loopback TCP); results are identical either way")
	stats := flag.String("stats", "", "write the per-task processing-times CSV (task → worker placement, timings) for every fan-out to this file")
	timeline := flag.String("timeline", "", "write the Fig-2-style worker-timeline SVG (the recorded fan-outs overlaid on the dataflow simulator's prediction for the same tasks) to this file")
	summary := flag.Bool("summary", false, "summary-only remote results (core.Config.SummaryOnly); only affects executors that ship specs across processes, never a reported number")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	env := experiments.NewEnv(*seed)
	env.Parallelism = *par
	env.SummaryOnly = *summary
	ex, err := newExecutor(*executor, *par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afbench: %v\n", err)
		os.Exit(2)
	}
	if *summary && !exec.SpecsOnly(ex) {
		// Both of afbench's executors run closures in-process, so no
		// feature payload ever crosses a wire; say so instead of letting
		// the flag silently do nothing.
		fmt.Fprintf(os.Stderr, "afbench: -summary has no effect with -executor=%s (in-process closures); it applies to spec-dispatching remote executors like `proteomectl submit`\n", *executor)
	}
	wantTrace := *stats != "" || *timeline != ""
	if ex == nil && wantTrace {
		// The default pool is implicit in the stages; a trace needs a
		// concrete executor to attach to.
		ex = exec.NewPool(*par)
	}
	trace := &exec.Trace{}
	if ex != nil {
		defer ex.Close()
		env.Executor = ex
		if wantTrace {
			exec.AttachTrace(ex, trace)
		}
	}
	selected := runners
	if name != "all" {
		selected = nil
		for _, r := range runners {
			if r.name == name {
				selected = []runner{r}
				break
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "afbench: unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
	}
	for i, r := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := r.run(env, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "afbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n", r.name, time.Since(start).Seconds())
	}
	if *stats != "" {
		rows := trace.Rows()
		f, err := os.Create(*stats)
		if err == nil {
			err = exec.WriteStatsCSV(f, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "afbench: writing -stats: %v\n", err)
			os.Exit(1)
		}
		if err := analysis.LoadBalance(rows, 10).Render(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "afbench: rendering load balance: %v\n", err)
			os.Exit(1)
		}
	}
	if *timeline != "" {
		rows := trace.Rows()
		title := fmt.Sprintf("afbench %s: %d tasks, measured vs simulated", name, len(rows))
		if err := analysis.WriteTimelineFile(*timeline, rows, title); err != nil {
			fmt.Fprintf(os.Stderr, "afbench: writing -timeline: %v\n", err)
			os.Exit(1)
		}
	}
}

// newExecutor builds the non-default execution back end, or nil for the
// pool (which the Env selects when no executor is configured).
func newExecutor(name string, parallelism int) (exec.Executor, error) {
	switch name {
	case "pool", "":
		return nil, nil
	case "flow":
		return exec.NewFlow(parallelism)
	default:
		return nil, fmt.Errorf("unknown -executor %q (want pool or flow)", name)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: afbench [-seed N] [-parallelism N] [-executor pool|flow] [-stats F] [-timeline F] [-summary] <experiment>")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, r := range runners {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", r.name, r.desc)
	}
	fmt.Fprintln(os.Stderr, "  all          run everything")
}
