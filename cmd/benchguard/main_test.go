package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "machine": "test",
  "benchmarks": {
    "BenchmarkGlobalAlign": {
      "current": {"ns_per_op": 471832, "bytes_per_op": 784, "allocs_per_op": 3}
    },
    "BenchmarkEnergyForces": {
      "current": {"ns_per_op": 582059, "bytes_per_op": 30, "allocs_per_op": 0}
    },
    "BenchmarkDispatchThroughput/json": {
      "current": {"ns_per_op": 80000000, "bytes_per_op": 8500000, "allocs_per_op": 36000, "allocs_tolerance": 0.10}
    }
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(testBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGuard(t *testing.T, baseline, require, input string) (bool, string) {
	t.Helper()
	var report strings.Builder
	ok := run(baseline, require, 8.0, 1.25, 64, bufio.NewScanner(strings.NewReader(input)), &report)
	return ok, report.String()
}

func TestParseBench(t *testing.T) {
	m, ok := parseBench("BenchmarkGlobalAlign-4   \t    2577\t    464921 ns/op\t     784 B/op\t       3 allocs/op")
	if !ok || m.name != "BenchmarkGlobalAlign" || m.allocs != 3 || !m.hasMem {
		t.Fatalf("parsed %+v ok=%v", m, ok)
	}
	if m.nsOp != 464921 || m.bOp != 784 {
		t.Errorf("values: %+v", m)
	}
	// No -cpu suffix, no memory stats.
	m, ok = parseBench("BenchmarkX 	 100 	 12.5 ns/op")
	if !ok || m.name != "BenchmarkX" || m.hasMem {
		t.Fatalf("parsed %+v ok=%v", m, ok)
	}
	if _, ok := parseBench("ok  	repro/internal/msa	1.250s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, ok := parseBench("goos: linux"); ok {
		t.Error("header line parsed")
	}
}

func TestGatePasses(t *testing.T) {
	input := `goos: linux
BenchmarkGlobalAlign-2   2577   464921 ns/op   784 B/op   3 allocs/op
BenchmarkEnergyForces    1948   571401 ns/op    30 B/op   0 allocs/op
PASS`
	ok, report := runGuard(t, writeBaseline(t), "BenchmarkGlobalAlign,BenchmarkEnergyForces", input)
	if !ok {
		t.Fatalf("gate failed:\n%s", report)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	input := "BenchmarkGlobalAlign-2   2577   464921 ns/op   784 B/op   11 allocs/op\n"
	ok, report := runGuard(t, writeBaseline(t), "", input)
	if ok {
		t.Fatal("alloc regression passed the gate")
	}
	if !strings.Contains(report, "allocs/op regressed: 11 != baseline 3") {
		t.Errorf("report:\n%s", report)
	}
}

func TestAllocImprovementAlsoFailsExactGate(t *testing.T) {
	input := "BenchmarkGlobalAlign-2   2577   464921 ns/op   784 B/op   1 allocs/op\n"
	ok, report := runGuard(t, writeBaseline(t), "", input)
	if ok {
		t.Fatal("alloc drift passed the exact gate")
	}
	if !strings.Contains(report, "improved") || !strings.Contains(report, "update BENCH_BASELINE.json") {
		t.Errorf("report:\n%s", report)
	}
}

func TestAllocsToleranceBand(t *testing.T) {
	// A concurrency benchmark's allocs wobble with goroutine scheduling;
	// its baseline row carries allocs_tolerance and is gated as a band.
	// 2% above baseline: inside the ±10% band. The sub-benchmark name
	// (with GOMAXPROCS suffix) must resolve to the baseline key.
	ok, report := runGuard(t, writeBaseline(t), "",
		"BenchmarkDispatchThroughput/json-4   5   80000000 ns/op   26000 tasks/s   8500000 B/op   36720 allocs/op\n")
	if !ok {
		t.Fatalf("allocs within the tolerance band failed the gate:\n%s", report)
	}
	// 15% above baseline: outside the band, in either direction.
	ok, report = runGuard(t, writeBaseline(t), "",
		"BenchmarkDispatchThroughput/json-4   5   80000000 ns/op   8500000 B/op   41400 allocs/op\n")
	if ok {
		t.Fatal("allocs past the tolerance band passed the gate")
	}
	if !strings.Contains(report, "outside baseline 36000") {
		t.Errorf("report:\n%s", report)
	}
	ok, _ = runGuard(t, writeBaseline(t), "",
		"BenchmarkDispatchThroughput/json-4   5   80000000 ns/op   8500000 B/op   30600 allocs/op\n")
	if ok {
		t.Fatal("alloc improvement past the tolerance band passed the gate")
	}
}

func TestNsRegressionFailsOnlyPastTolerance(t *testing.T) {
	// 2x baseline: within the generous 8x tolerance.
	ok, report := runGuard(t, writeBaseline(t), "",
		"BenchmarkGlobalAlign-2   100   943664 ns/op   784 B/op   3 allocs/op\n")
	if !ok {
		t.Fatalf("2x ns/op failed the gate:\n%s", report)
	}
	// 10x baseline: past tolerance.
	ok, report = runGuard(t, writeBaseline(t), "",
		"BenchmarkGlobalAlign-2   100   4718320 ns/op   784 B/op   3 allocs/op\n")
	if ok {
		t.Fatal("10x ns/op passed the gate")
	}
	if !strings.Contains(report, "exceeds 8x baseline") {
		t.Errorf("report:\n%s", report)
	}
}

func TestMissingRequiredBenchmarkFails(t *testing.T) {
	input := "BenchmarkGlobalAlign-2   2577   464921 ns/op   784 B/op   3 allocs/op\n"
	ok, report := runGuard(t, writeBaseline(t), "BenchmarkGlobalAlign,BenchmarkEnergyForces", input)
	if ok {
		t.Fatal("missing required benchmark passed the gate")
	}
	if !strings.Contains(report, "BenchmarkEnergyForces: required benchmark missing") {
		t.Errorf("report:\n%s", report)
	}
}

func TestUnknownBenchmarkSkippedAndEmptyInputFails(t *testing.T) {
	ok, report := runGuard(t, writeBaseline(t), "",
		"BenchmarkNovel-2   10   5 ns/op   0 B/op   0 allocs/op\n")
	if ok {
		t.Fatal("input with zero compared benchmarks must fail")
	}
	if !strings.Contains(report, "no baseline entry") || !strings.Contains(report, "no benchmarks compared") {
		t.Errorf("report:\n%s", report)
	}
}

func TestMissingMemStatsFails(t *testing.T) {
	ok, report := runGuard(t, writeBaseline(t), "",
		"BenchmarkGlobalAlign-2   2577   464921 ns/op\n")
	if ok {
		t.Fatal("input without -benchmem stats passed the exact-allocs gate")
	}
	if !strings.Contains(report, "-benchmem") {
		t.Errorf("report:\n%s", report)
	}
}
