// Command benchguard is the CI bench-regression gate: it parses `go test
// -bench -benchmem` output from stdin and compares every benchmark that
// has an entry in BENCH_BASELINE.json against the baseline's "current"
// values.
//
// The perf contract it enforces is asymmetric, matching what is stable on
// shared CI runners:
//
//   - allocs/op is gated exactly — allocation counts are deterministic, so
//     any drift is a real change and must be reflected in the baseline.
//     Concurrency benchmarks (the dispatch-throughput rows) are the one
//     exception: goroutine scheduling shifts buffer growth and flush
//     counts by a percent or two, so their baseline entries carry an
//     explicit "allocs_tolerance" band and are gated within it, in both
//     directions;
//   - ns/op is gated with a generous multiplicative tolerance (CI machines
//     are noisy and heterogeneous; the gate only catches order-of-magnitude
//     regressions);
//   - B/op is gated with a small tolerance plus slack (byte counts wobble
//     by a few bytes per op from pooled-buffer accounting).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | benchguard \
//	    -baseline BENCH_BASELINE.json -require BenchmarkGlobalAlign,...
//
// -require lists benchmarks that must appear in the input, so a renamed
// benchmark cannot silently drop out of the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the layout of BENCH_BASELINE.json.
type baselineFile struct {
	Machine    string                      `json:"machine"`
	Benchmarks map[string]baselineVariants `json:"benchmarks"`
}

type baselineVariants struct {
	Seed    *baselineEntry `json:"seed"`
	Current *baselineEntry `json:"current"`
}

type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// AllocsTolerance, when non-zero, relaxes the exact allocs/op gate to
	// a symmetric fractional band (0.10 = ±10%) for benchmarks whose
	// allocation counts are scheduling-dependent. Drift past the band in
	// either direction still fails, so real changes reach the baseline.
	AllocsTolerance float64 `json:"allocs_tolerance,omitempty"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name   string
	nsOp   float64
	bOp    float64
	allocs int64
	hasMem bool
}

// benchLine matches the name and ns/op columns of e.g.
//
//	BenchmarkGlobalAlign-4   2577   464921 ns/op   784 B/op   3 allocs/op
//
// The memory columns are extracted separately, because custom
// b.ReportMetric columns (the dispatch benchmark's tasks/s) sit between
// ns/op and B/op in go test output.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	bytesCol  = regexp.MustCompile(`\s([0-9.]+) B/op`)
	allocsCol = regexp.MustCompile(`\s(\d+) allocs/op`)
)

func parseBench(line string) (measurement, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return measurement{}, false
	}
	ns, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return measurement{}, false
	}
	out := measurement{name: m[1], nsOp: ns}
	bc := bytesCol.FindStringSubmatch(line)
	ac := allocsCol.FindStringSubmatch(line)
	if bc != nil && ac != nil {
		out.bOp, _ = strconv.ParseFloat(bc[1], 64)
		allocs, err := strconv.ParseInt(ac[1], 10, 64)
		if err != nil {
			return measurement{}, false
		}
		out.allocs = allocs
		out.hasMem = true
	}
	return out, true
}

// check compares one measurement against its baseline and returns the
// failures (empty when the gate passes).
func check(m measurement, base baselineEntry, nsTol, bytesTol float64, bytesSlack float64) []string {
	var fails []string
	if limit := base.NsPerOp * nsTol; base.NsPerOp > 0 && m.nsOp > limit {
		fails = append(fails, fmt.Sprintf(
			"%s: %.0f ns/op exceeds %.0fx baseline %.0f ns/op",
			m.name, m.nsOp, nsTol, base.NsPerOp))
	}
	if !m.hasMem {
		fails = append(fails, fmt.Sprintf(
			"%s: no memory stats in input; run the benchmarks with -benchmem", m.name))
		return fails
	}
	if tol := base.AllocsTolerance; tol > 0 {
		lo := float64(base.AllocsPerOp) * (1 - tol)
		hi := float64(base.AllocsPerOp) * (1 + tol)
		if got := float64(m.allocs); got < lo || got > hi {
			kind := "regressed"
			if got < lo {
				kind = "improved"
			}
			fails = append(fails, fmt.Sprintf(
				"%s: allocs/op %s: %d outside baseline %d ±%.0f%% (update BENCH_BASELINE.json if this change is intentional)",
				m.name, kind, m.allocs, base.AllocsPerOp, tol*100))
		}
	} else if m.allocs != base.AllocsPerOp {
		kind := "regressed"
		if m.allocs < base.AllocsPerOp {
			kind = "improved"
		}
		fails = append(fails, fmt.Sprintf(
			"%s: allocs/op %s: %d != baseline %d (allocs are gated exactly; update BENCH_BASELINE.json if this change is intentional)",
			m.name, kind, m.allocs, base.AllocsPerOp))
	}
	if limit := base.BytesPerOp*bytesTol + bytesSlack; m.bOp > limit {
		fails = append(fails, fmt.Sprintf(
			"%s: %.0f B/op exceeds baseline %.0f B/op (limit %.0f)",
			m.name, m.bOp, base.BytesPerOp, limit))
	}
	return fails
}

func run(baselinePath, require string, nsTol, bytesTol, bytesSlack float64, input *bufio.Scanner, out *strings.Builder) (ok bool) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "benchguard: %v\n", err)
		return false
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(out, "benchguard: parsing %s: %v\n", baselinePath, err)
		return false
	}

	seen := map[string]bool{}
	var failures []string
	compared := 0
	for input.Scan() {
		m, isBench := parseBench(input.Text())
		if !isBench {
			continue
		}
		seen[m.name] = true
		variants, inBaseline := base.Benchmarks[m.name]
		if !inBaseline || variants.Current == nil {
			fmt.Fprintf(out, "benchguard: %-28s (no baseline entry; skipped)\n", m.name)
			continue
		}
		compared++
		fails := check(m, *variants.Current, nsTol, bytesTol, bytesSlack)
		if len(fails) == 0 {
			fmt.Fprintf(out, "benchguard: %-28s ok (%.0f ns/op, %d allocs/op)\n",
				m.name, m.nsOp, m.allocs)
		}
		failures = append(failures, fails...)
	}
	if require != "" {
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !seen[name] {
				failures = append(failures, fmt.Sprintf(
					"%s: required benchmark missing from input", name))
			}
		}
	}
	if compared == 0 {
		failures = append(failures, "no benchmarks compared; wrong input?")
	}
	for _, f := range failures {
		fmt.Fprintf(out, "benchguard: FAIL %s\n", f)
	}
	return len(failures) == 0
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	require := flag.String("require", "", "comma-separated benchmark names that must appear in the input")
	nsTol := flag.Float64("ns-tolerance", 8.0, "ns/op failure threshold as a multiple of the baseline")
	bytesTol := flag.Float64("bytes-tolerance", 1.25, "B/op failure threshold as a multiple of the baseline")
	bytesSlack := flag.Float64("bytes-slack", 64, "additive B/op slack on top of the tolerance")
	flag.Parse()

	var report strings.Builder
	ok := run(*baselinePath, *require, *nsTol, *bytesTol, *bytesSlack,
		bufio.NewScanner(os.Stdin), &report)
	fmt.Print(report.String())
	if !ok {
		os.Exit(1)
	}
}
